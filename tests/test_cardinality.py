"""Tests for cardinality estimation (Eqs. 10–11)."""

import random

import pytest

from repro import parse_query
from repro.core import JoinGraph
from repro.core import bitset as bs
from repro.core.cardinality import (
    CardinalityEstimator,
    PatternStatistics,
    StatisticsCatalog,
)
from repro.rdf import Dataset, triple
from repro.rdf.terms import Variable


@pytest.fixture
def two_pattern_query():
    return parse_query(
        "SELECT * WHERE { ?x <http://e/p> ?y . ?y <http://e/q> ?z . }"
    )


class TestEquation10:
    def test_binary_join_formula(self, two_pattern_query):
        """|tp1 ⋈ tp2| = |tp1|·|tp2| / max(B(tp1,y), B(tp2,y))."""
        y = Variable("y")
        catalog = StatisticsCatalog(
            two_pattern_query,
            [
                PatternStatistics(100.0, {Variable("x"): 50.0, y: 20.0}),
                PatternStatistics(200.0, {y: 40.0, Variable("z"): 10.0}),
            ],
        )
        jg = JoinGraph(two_pattern_query)
        est = CardinalityEstimator(jg, catalog)
        assert est.cardinality(0b11) == pytest.approx(100 * 200 / 40.0)

    def test_no_shared_variable_gives_product(self):
        q = parse_query(
            "SELECT * WHERE { ?x <http://e/p> ?y . ?y <http://e/q> ?z . ?z <http://e/r> ?w . }"
        )
        jg = JoinGraph(q)
        catalog = StatisticsCatalog.uniform(q, cardinality=10.0)
        est = CardinalityEstimator(jg, catalog)
        # tp0 and tp2 share nothing: estimating that (disconnected) set
        # folds with an empty denominator -> cross product
        assert est.cardinality(0b101) == pytest.approx(100.0)

    def test_floor_at_one(self, two_pattern_query):
        catalog = StatisticsCatalog(
            two_pattern_query,
            [
                PatternStatistics(2.0, {Variable("y"): 2.0}),
                PatternStatistics(3.0, {Variable("y"): 1000.0}),
            ],
        )
        est = CardinalityEstimator(JoinGraph(two_pattern_query), catalog)
        assert est.cardinality(0b11) >= 1.0


class TestEquation11:
    def test_fold_is_plan_shape_independent(self, fig1_query):
        """All plans of a subquery must see one cardinality (memo safety)."""
        jg = JoinGraph(fig1_query)
        catalog = StatisticsCatalog.from_random(fig1_query, random.Random(3))
        est = CardinalityEstimator(jg, catalog)
        for sub in (0b0000111, 0b1100011, jg.full):
            assert est.cardinality(sub) == est.cardinality(sub)  # cached
        # estimate depends only on the bitset, not on call order
        est2 = CardinalityEstimator(jg, catalog)
        assert est2.cardinality(jg.full) == est.cardinality(jg.full)

    def test_bindings_capped_by_cardinality(self, fig1_query):
        jg = JoinGraph(fig1_query)
        catalog = StatisticsCatalog.from_random(fig1_query, random.Random(3))
        est = CardinalityEstimator(jg, catalog)
        for variable in jg.join_variables:
            bits = jg.ntp(variable)
            assert est.bindings(bits, variable) <= est.cardinality(bits)

    def test_empty_subquery_rejected(self, fig1_query):
        jg = JoinGraph(fig1_query)
        est = CardinalityEstimator(jg, StatisticsCatalog.uniform(fig1_query))
        with pytest.raises(ValueError):
            est.cardinality(0)


def _full_refold(jg, catalog, bits):
    """Reference Eq. 11 fold: every pattern re-folded in index order.

    This is the pre-incremental algorithm; the estimator's prefix-chain
    extension must reproduce its float arithmetic bit for bit.
    """
    indices = bs.to_indices(bits)
    first = catalog[indices[0]]
    card = first.cardinality
    bindings = {
        v: first.binding_count(v)
        for v in jg.patterns[indices[0]].variables()
    }
    for index in indices[1:]:
        stats = catalog[index]
        pattern = jg.patterns[index]
        shared = sorted(
            (v for v in pattern.variables() if v in bindings),
            key=lambda v: v.name,
        )
        denominator = 1.0
        for v in shared:
            denominator *= max(bindings[v], stats.binding_count(v))
        card = max(card * stats.cardinality / denominator, 1.0)
        for v in pattern.variables():
            b = stats.binding_count(v)
            bindings[v] = min(bindings.get(v, b), b)
    return card, bindings


class TestIncrementalFold:
    def test_matches_full_refold_on_every_subquery(self, fig1_query):
        """Prefix-chain extension == full re-fold, bit for bit, for all
        127 non-empty subsets of the Figure 1 query."""
        jg = JoinGraph(fig1_query)
        catalog = StatisticsCatalog.from_random(fig1_query, random.Random(6))
        est = CardinalityEstimator(jg, catalog)
        for bits in range(1, jg.full + 1):
            expected_card, expected_bindings = _full_refold(jg, catalog, bits)
            assert est.cardinality(bits) == expected_card
            for variable, value in expected_bindings.items():
                assert est.bindings(bits, variable) == min(
                    value, expected_card
                )

    def test_call_order_does_not_change_estimates(self, fig1_query):
        """The cache is an optimization, not a semantic: querying in
        shuffled order gives the same answers as fresh estimators."""
        jg = JoinGraph(fig1_query)
        catalog = StatisticsCatalog.from_random(fig1_query, random.Random(8))
        est = CardinalityEstimator(jg, catalog)
        order = list(range(1, jg.full + 1))
        random.Random(99).shuffle(order)
        for bits in order:
            fresh = CardinalityEstimator(jg, catalog)
            assert est.cardinality(bits) == fresh.cardinality(bits)

    def test_cached_prefixes_stay_immutable(self, fig1_query):
        """Extending a cached prefix must not mutate its bindings dict."""
        jg = JoinGraph(fig1_query)
        catalog = StatisticsCatalog.from_random(fig1_query, random.Random(2))
        est = CardinalityEstimator(jg, catalog)
        est.cardinality(0b0000011)
        before = dict(est._cache[0b0000011][1])
        est.cardinality(jg.full)  # extends the 0b11 prefix
        assert est._cache[0b0000011][1] == before


class TestCatalogs:
    def test_from_random_ranges(self, fig1_query):
        catalog = StatisticsCatalog.from_random(
            fig1_query, random.Random(0), max_cardinality=1000
        )
        for i, tp in enumerate(fig1_query):
            stats = catalog[i]
            assert 1 <= stats.cardinality <= 1000
            for variable in tp.variables():
                assert 1 <= stats.binding_count(variable) <= stats.cardinality

    def test_from_dataset_counts_exactly(self):
        ds = Dataset.from_triples(
            [
                triple("http://e/a", "http://e/p", "http://e/b"),
                triple("http://e/a", "http://e/p", "http://e/c"),
                triple("http://e/x", "http://e/p", "http://e/b"),
            ]
        )
        q = parse_query("SELECT * WHERE { ?s <http://e/p> ?o . ?o <http://e/p> ?z . }")
        catalog = StatisticsCatalog.from_dataset(q, ds)
        assert catalog[0].cardinality == 3.0
        assert catalog[0].binding_count(Variable("s")) == 2.0
        assert catalog[0].binding_count(Variable("o")) == 2.0

    def test_length_mismatch_rejected(self, fig1_query):
        with pytest.raises(ValueError):
            StatisticsCatalog(fig1_query, [PatternStatistics(1.0)])

    def test_unknown_binding_defaults_to_cardinality(self):
        stats = PatternStatistics(7.0, {})
        assert stats.binding_count(Variable("zz")) == 7.0
