"""Chaos harness: seeded lifecycle episodes, every one classified.

Runs 300 randomized governance episodes — 2 engines × 2 LUBM queries ×
5 scenarios × 15 seeds — through the full lifecycle (optimize under an
anytime deadline where the scenario says so, then execute under faults
and budgets).  Every episode must land in exactly one class:

* ``completed`` — the result is bit-identical to the
  :func:`~repro.engine.executor.evaluate_reference` oracle;
* ``degraded-anytime`` — the optimizer deadline expired, the degraded
  plan passes :class:`~repro.analysis.PlanVerifier`, and executing it
  still reproduces the oracle (anytime plans are complete plans);
* ``aborted:<cause>`` — a structured :class:`QueryAborted` whose cause,
  phase, and context fields are populated.

No episode can hang by construction: deadlines run on deterministic
:class:`SteppingClock` instances (no sleeps), execution is serial (no
process pools), and retries are bounded by policy and budget.  All
randomness is derived from string-keyed :class:`random.Random` seeds,
so the sweep is exactly reproducible.
"""

import random
from collections import Counter

import pytest

from repro import (
    AbortCause,
    Deadline,
    OptimizeOptions,
    Optimizer,
    QueryAborted,
    QueryBudget,
    SteppingClock,
)
from repro.analysis import VerificationContext, verify_result
from repro.core import StatisticsCatalog
from repro.engine import (
    ENGINES,
    CircuitBreaker,
    Cluster,
    Executor,
    FailStop,
    FaultInjector,
    RetryPolicy,
    Straggler,
    Transient,
    evaluate_reference,
)
from repro.partitioning import HashSubjectObject
from repro.workloads import generate_lubm, lubm_query

ALGORITHMS = ("td-cmd", "td-cmdp", "hgr-td-cmd", "td-auto")
QUERIES = ("L2", "L7")
SCENARIOS = (
    "baseline",
    "anytime",
    "row-budget",
    "retry-budget",
    "exec-deadline",
)
SEEDS = range(15)

#: generous per-operator retry cap so only *budgets* end episodes
PATIENT = RetryPolicy(max_retries=64)

#: classification tally across the whole parametrized sweep
EPISODES: Counter = Counter()


@pytest.fixture(scope="module")
def world():
    dataset = generate_lubm(scale=0.3)
    method = HashSubjectObject()
    cluster = Cluster.build(dataset, method, cluster_size=4)
    queries = {}
    for name in QUERIES:
        query = lubm_query(name)
        statistics = StatisticsCatalog.from_dataset(query, dataset)
        plan = (
            Optimizer(
                OptimizeOptions(statistics=statistics, partitioning=method)
            )
            .optimize(query)
            .plan
        )
        oracle = evaluate_reference(query, dataset.graph)
        queries[name] = (query, statistics, plan, oracle)
    return method, cluster, queries


def _rng(engine, qname, scenario, seed):
    return random.Random(f"{engine}|{qname}|{scenario}|{seed}")


def _injector(rng, rate):
    if rate == 0.0:
        return None
    models = rng.choice(
        [None, (FailStop(),), (Transient(),), (Straggler(),)]
    )
    return FaultInjector(rate, seed=rng.randrange(2**16), models=models)


def _executor(cluster, engine, injector, breaker=None):
    return Executor(
        cluster,
        fault_injector=injector,
        retry_policy=PATIENT,
        engine=engine,
        circuit_breaker=breaker,
    )


def _classify_abort(abort):
    assert isinstance(abort, QueryAborted)
    assert abort.cause in AbortCause
    assert abort.phase in ("optimize", "execute")
    return f"aborted:{abort.cause.value}"


def _run_episode(world, engine, qname, scenario, seed):
    method, cluster, queries = world
    query, statistics, plan, oracle = queries[qname]
    rng = _rng(engine, qname, scenario, seed)
    cluster.heal()

    if scenario == "baseline":
        rate = rng.choice([0.0, 0.3, 0.6])
        breaker = CircuitBreaker() if rng.random() < 0.5 else None
        executor = _executor(cluster, engine, _injector(rng, rate), breaker)
        relation, metrics = executor.execute(plan, query)
        assert relation.rows == oracle.rows
        assert "abort_cause" not in metrics.summary()
        return "completed"

    if scenario == "anytime":
        ticks = rng.choice([0, 5, 20, 80, 320])
        budget = QueryBudget(
            deadline=Deadline.after(float(ticks), SteppingClock(step=1.0)),
            anytime=True,
            query_id=qname,
        )
        session = Optimizer(
            OptimizeOptions(
                algorithm=rng.choice(ALGORITHMS),
                statistics=statistics,
                partitioning=method,
            )
        )
        result = session.optimize(query, budget=budget)
        relation, _ = _executor(cluster, engine, None).execute(
            result.plan, query
        )
        assert relation.rows == oracle.rows
        if not result.stats.degraded:
            return "completed"
        assert "[anytime" in result.algorithm
        report = verify_result(
            result,
            VerificationContext.for_query(
                query, statistics=statistics, partitioning=method
            ),
        )
        assert report.ok, report.render()
        return "degraded-anytime"

    if scenario == "row-budget":
        budget = QueryBudget(
            row_budget=rng.choice([1, 25, 500, 10**9]), query_id=qname
        )
        rate = rng.choice([0.0, 0.4])
        executor = _executor(cluster, engine, _injector(rng, rate))
        try:
            relation, _ = executor.execute(plan, query, budget=budget)
        except QueryAborted as abort:
            assert abort.cause is AbortCause.ROW_BUDGET
            assert abort.operator
            assert abort.partial_metrics is not None
            return _classify_abort(abort)
        assert relation.rows == oracle.rows
        return "completed"

    if scenario == "retry-budget":
        budget = QueryBudget(retry_budget=rng.randint(0, 4), query_id=qname)
        executor = _executor(cluster, engine, _injector(rng, 0.8))
        try:
            relation, _ = executor.execute(plan, query, budget=budget)
        except QueryAborted as abort:
            assert abort.cause is AbortCause.RETRY_EXHAUSTED
            assert abort.attempts
            return _classify_abort(abort)
        assert relation.rows == oracle.rows
        return "completed"

    assert scenario == "exec-deadline"
    budget = QueryBudget(
        deadline=Deadline.after(
            float(rng.choice([0, 2, 5, 9, 14])), SteppingClock(step=1.0)
        ),
        query_id=qname,
    )
    rate = rng.choice([0.0, 0.4])
    executor = _executor(cluster, engine, _injector(rng, rate))
    try:
        relation, _ = executor.execute(plan, query, budget=budget)
    except QueryAborted as abort:
        assert abort.cause is AbortCause.DEADLINE
        assert abort.partial_metrics is not None
        return _classify_abort(abort)
    assert relation.rows == oracle.rows
    return "completed"


@pytest.mark.parametrize("qname", QUERIES)
@pytest.mark.parametrize("engine", ENGINES)
def test_chaos_episodes(world, engine, qname):
    tally = Counter()
    for scenario in SCENARIOS:
        for seed in SEEDS:
            outcome = _run_episode(world, engine, qname, scenario, seed)
            tally[outcome] += 1
            EPISODES[outcome] += 1
    assert sum(tally.values()) == len(SCENARIOS) * len(SEEDS)
    # every class of outcome occurs for every engine × query slice
    assert tally["completed"] > 0
    assert tally["degraded-anytime"] > 0
    assert tally["aborted:row-budget"] > 0
    assert tally["aborted:retry-exhausted"] > 0
    assert tally["aborted:deadline"] > 0


def test_episode_volume():
    """The harness ran the full sweep (≥300 episodes, all classified)."""
    if not EPISODES:
        pytest.skip("episode sweep deselected")
    assert sum(EPISODES.values()) >= 300
    assert set(EPISODES) <= {
        "completed",
        "degraded-anytime",
        "aborted:row-budget",
        "aborted:retry-exhausted",
        "aborted:deadline",
        "aborted:cancelled",
    }
