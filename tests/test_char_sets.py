"""Tests for characteristic-sets estimation (the pluggable-cost-model demo)."""

import pytest

from repro import parse_query
from repro.core import JoinGraph, StatisticsCatalog, TopDownEnumerator
from repro.core.cardinality import CardinalityEstimator
from repro.core.char_sets import (
    CharacteristicSets,
    CharacteristicSetsEstimator,
    build_estimator,
)
from repro.core.cost import PlanBuilder
from repro.core.plans import validate_plan
from repro.engine import evaluate_reference
from repro.rdf import Dataset, IRI, triple


@pytest.fixture
def people_dataset():
    """40 people with *anti-correlated* predicates: everyone has
    name+age, the first 20 additionally have phone, the last 20 email —
    so phone and email never co-occur, which the independence
    assumption cannot know."""
    triples = []
    for i in range(40):
        person = f"http://e/p{i}"
        triples.append(triple(person, "http://e/name", f'"n{i}"'))
        triples.append(triple(person, "http://e/age", f'"{20 + i}"'))
        if i < 20:
            triples.append(triple(person, "http://e/phone", f'"t{i}"'))
        else:
            triples.append(triple(person, "http://e/email", f'"e{i}"'))
    return Dataset.from_triples(triples, name="people")


class TestSummary:
    def test_two_characteristic_sets(self, people_dataset):
        summary = CharacteristicSets(people_dataset)
        assert len(summary) == 2
        assert sorted(cs.subjects for cs in summary.sets) == [20, 20]

    def test_star_estimates(self, people_dataset):
        summary = CharacteristicSets(people_dataset)
        name_age = frozenset({IRI("http://e/name"), IRI("http://e/age")})
        assert summary.estimate_star(name_age) == pytest.approx(40.0)
        with_phone = name_age | {IRI("http://e/phone")}
        assert summary.estimate_star(with_phone) == pytest.approx(20.0)
        impossible = frozenset({IRI("http://e/phone"), IRI("http://e/email")})
        assert summary.estimate_star(impossible) == pytest.approx(0.0)

    def test_distinct_subjects(self, people_dataset):
        summary = CharacteristicSets(people_dataset)
        assert summary.distinct_star_subjects(
            frozenset({IRI("http://e/email")})
        ) == pytest.approx(20.0)

    def test_multi_valued_predicates(self):
        ds = Dataset.from_triples(
            [
                triple("http://e/s", "http://e/tag", f'"t{i}"')
                for i in range(5)
            ]
        )
        summary = CharacteristicSets(ds)
        # one subject, 5 tag triples -> star over {tag} estimates 5
        assert summary.estimate_star(
            frozenset({IRI("http://e/tag")})
        ) == pytest.approx(5.0)


class TestEstimator:
    def impossible_star(self):
        return parse_query(
            """
            SELECT * WHERE {
              ?p <http://e/phone> ?t .
              ?p <http://e/email> ?m .
            }
            """
        )

    def test_detects_anticorrelation_where_independence_fails(
        self, people_dataset
    ):
        """phone ∧ email never co-occur: characteristic sets estimate ~0
        (clamped to 1) while the independence fold predicts 20."""
        query = self.impossible_star()
        truth = len(evaluate_reference(query, people_dataset.graph))
        assert truth == 0
        char = build_estimator(query, people_dataset)
        jg = char.join_graph
        default = CardinalityEstimator(
            jg, StatisticsCatalog.from_dataset(query, people_dataset)
        )
        assert char.cardinality(jg.full) == pytest.approx(1.0)  # clamp floor
        assert default.cardinality(jg.full) == pytest.approx(20.0)

    def test_non_star_falls_back(self, people_dataset):
        query = parse_query(
            """
            SELECT * WHERE {
              ?p <http://e/name> ?n .
              ?q <http://e/age> ?n .
            }
            """
        )
        char = build_estimator(query, people_dataset)
        default = CardinalityEstimator(
            char.join_graph,
            StatisticsCatalog.from_dataset(query, people_dataset),
        )
        assert char.cardinality(char.join_graph.full) == pytest.approx(
            default.cardinality(default.join_graph.full)
        )

    def test_constant_object_falls_back(self, people_dataset):
        query = parse_query(
            """
            SELECT * WHERE {
              ?p <http://e/name> "n3" .
              ?p <http://e/age> ?a .
            }
            """
        )
        char = build_estimator(query, people_dataset)
        default = CardinalityEstimator(
            char.join_graph,
            StatisticsCatalog.from_dataset(query, people_dataset),
        )
        assert char.cardinality(char.join_graph.full) == pytest.approx(
            default.cardinality(default.join_graph.full)
        )

    def test_optimizer_accepts_the_estimator(self, people_dataset):
        """The estimator is a drop-in: TD-CMD runs unchanged on it and
        prices the impossible star at the clamp floor."""
        query = self.impossible_star()
        estimator = build_estimator(query, people_dataset)
        builder = PlanBuilder(estimator.join_graph, estimator)
        result = TopDownEnumerator(estimator.join_graph, builder).optimize()
        validate_plan(result.plan, estimator.join_graph.full)
        assert result.plan.cardinality == pytest.approx(1.0)

    def test_correct_star_estimate_on_possible_star(self, people_dataset):
        query = parse_query(
            """
            SELECT * WHERE {
              ?p <http://e/name> ?n .
              ?p <http://e/phone> ?t .
            }
            """
        )
        truth = len(evaluate_reference(query, people_dataset.graph))
        char = build_estimator(query, people_dataset)
        assert char.cardinality(char.join_graph.full) == pytest.approx(truth)
