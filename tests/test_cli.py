"""Tests for the command-line interface (python -m repro)."""

import json

import pytest

from repro.__main__ import build_parser, main
from repro.rdf import save_ntriples, triple


@pytest.fixture
def query_file(tmp_path):
    path = tmp_path / "q.sparql"
    path.write_text(
        """
        SELECT ?x ?z WHERE {
          ?x <http://e/p> ?y .
          ?y <http://e/q> ?z .
        }
        """,
        encoding="utf-8",
    )
    return str(path)


@pytest.fixture
def data_file(tmp_path):
    triples = []
    for i in range(10):
        triples.append(triple(f"http://e/a{i}", "http://e/p", f"http://e/b{i}"))
        triples.append(triple(f"http://e/b{i}", "http://e/q", f"http://e/c{i}"))
    path = tmp_path / "data.nt"
    save_ntriples(triples, path)
    return str(path)


class TestOptimize:
    def test_text_output(self, capsys, query_file, data_file):
        assert main(["optimize", query_file, "--data", data_file]) == 0
        out = capsys.readouterr().out
        assert "scan[0]" in out

    def test_json_output(self, capsys, query_file):
        assert main(["optimize", query_file, "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["kind"] in ("join", "scan")

    def test_dot_output(self, capsys, query_file):
        assert main(["optimize", query_file, "--dot"]) == 0
        assert capsys.readouterr().out.startswith("digraph")

    def test_partitioning_flag(self, capsys, query_file, data_file):
        code = main(
            [
                "optimize",
                query_file,
                "--data",
                data_file,
                "--partitioning",
                "path-bmc",
            ]
        )
        assert code == 0

    def test_unknown_algorithm_fails(self, query_file):
        with pytest.raises(ValueError):
            main(["optimize", query_file, "--algorithm", "bogus"])

    def test_jobs_flag_runs_parallel_search(self, capsys, query_file):
        code = main(
            ["optimize", query_file, "--algorithm", "td-cmd", "--jobs", "2"]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "scan[0]" in captured.out
        # a 2-pattern query has a single root division: capped to serial
        serial = main(["optimize", query_file, "--algorithm", "td-cmd"])
        assert serial == 0

    def test_plan_cache_hits_across_invocations(
        self, capsys, tmp_path, query_file
    ):
        """Two CLI runs with the same seed: cold miss, then a warm hit
        returning the identical plan (stats are cross-process stable)."""
        cache = str(tmp_path / "plans.json")
        assert main(["optimize", query_file, "--plan-cache", cache]) == 0
        first = capsys.readouterr()
        assert "plan-cache: miss" in first.err
        assert main(["optimize", query_file, "--plan-cache", cache]) == 0
        second = capsys.readouterr()
        assert "plan-cache: hit" in second.err
        assert "+cache" in second.err
        assert second.out == first.out


class TestRun:
    def test_executes_and_prints_rows(self, capsys, query_file, data_file):
        assert main(["run", query_file, "--data", data_file, "--workers", "3"]) == 0
        captured = capsys.readouterr()
        assert "?x" in captured.out and "?z" in captured.out
        assert "result_rows: 10" in captured.err

    def test_limit_truncates_result(self, capsys, query_file, data_file):
        main(["run", query_file, "--data", data_file, "--limit", "2"])
        captured = capsys.readouterr()
        assert "result_rows: 2" in captured.err
        body = [line for line in captured.out.splitlines() if line][1:]
        assert len(body) == 2

    def test_default_print_cap_notes_remaining_rows(
        self, capsys, query_file, data_file
    ):
        # 10 result rows, no --limit: all execute, 20-row print cap is
        # not reached, so no truncation note either way
        main(["run", query_file, "--data", data_file])
        captured = capsys.readouterr()
        assert "result_rows: 10" in captured.err
        assert "more rows" not in captured.err

    def test_limit_pushdown_with_pipelined_engine(
        self, capsys, query_file, data_file
    ):
        main(
            [
                "run",
                query_file,
                "--data",
                data_file,
                "--engine",
                "pipelined",
                "--limit",
                "2",
            ]
        )
        captured = capsys.readouterr()
        assert "limit_pushdown: True" in captured.err
        assert "limit-pushdown: stream stopped after 2 row(s)" in captured.err
        assert "first_row_seconds" in captured.err

    def test_fault_injection_flags(self, capsys, query_file, data_file):
        code = main(
            [
                "run",
                query_file,
                "--data",
                data_file,
                "--workers",
                "3",
                "--fault-rate",
                "0.4",
                "--fault-seed",
                "7",
                "--max-retries",
                "32",
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        # same bindings as the fault-free run
        assert "result_rows: 10" in captured.err
        assert "faults_injected:" in captured.err
        assert "recovery_cost:" in captured.err

    def test_zero_fault_rate_output_unchanged(self, capsys, query_file, data_file):
        main(["run", query_file, "--data", data_file, "--workers", "3"])
        baseline = capsys.readouterr()
        main(
            [
                "run",
                query_file,
                "--data",
                data_file,
                "--workers",
                "3",
                "--fault-rate",
                "0",
                "--fault-seed",
                "99",
            ]
        )
        faulty = capsys.readouterr()
        assert faulty.out == baseline.out

        def simulated(err):  # drop wall-clock lines, keep simulated metrics
            return [line for line in err.splitlines() if "seconds" not in line]

        assert simulated(faulty.err) == simulated(baseline.err)

    def test_fault_flags_parse_defaults(self):
        args = build_parser().parse_args(["run", "q.sparql", "--data", "d.nt"])
        assert args.fault_rate == 0.0
        assert args.fault_seed == 0
        assert args.max_retries is None


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_demo_defaults(self):
        args = build_parser().parse_args(["demo"])
        assert args.query == "L7"
        assert args.workers == 10

    def test_experiments_unknown_name(self):
        with pytest.raises(SystemExit):
            main(["experiments", "table99"])
