"""Property and unit tests for cbd/cmd enumeration (Algorithms 2–3).

The efficient enumerators are cross-validated against brute-force
implementations of Definition 3 on the paper's running example and on
random join graphs of every shape (hypothesis), plus Theorem 1/2
uniqueness checks (no duplicates) and the paper's Example 4.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import JoinGraph
from repro.core import bitset as bs
from repro.core.cmd import (
    brute_force_cbds,
    brute_force_cmds,
    canonical_cmd,
    enumerate_cbds,
    enumerate_ccmds,
    enumerate_cmds,
    enumerate_cmds_pruned,
    is_valid_cmd,
)
from repro.rdf.terms import Variable
from repro.workloads.generators import (
    chain_query,
    cycle_query,
    dense_query,
    generate_query,
    star_query,
    tree_query,
)
from repro.core.join_graph import QueryShape


def all_cbds(join_graph, bits, variable):
    return sorted(enumerate_cbds(join_graph, bits, variable))


class TestCBDFigure1:
    def test_matches_brute_force_on_every_variable(self, fig1_graph):
        for variable in fig1_graph.join_variables:
            fast = all_cbds(fig1_graph, fig1_graph.full, variable)
            slow = sorted(brute_force_cbds(fig1_graph, fig1_graph.full, variable))
            assert fast == slow

    def test_no_duplicates(self, fig1_graph):
        for variable in fig1_graph.join_variables:
            fast = list(enumerate_cbds(fig1_graph, fig1_graph.full, variable))
            assert len(fast) == len(set(fast))

    def test_every_cbd_is_valid(self, fig1_graph):
        for variable in fig1_graph.join_variables:
            for left, right in enumerate_cbds(
                fig1_graph, fig1_graph.full, variable
            ):
                assert is_valid_cmd(
                    fig1_graph, fig1_graph.full, (left, right), variable
                )

    def test_low_degree_variable_yields_nothing_below_two(self, fig1_graph):
        # ?f and ?g are not join variables at all
        with pytest.raises(KeyError):
            fig1_graph.ntp(Variable("f"))

    def test_cbds_on_subquery(self, fig1_graph):
        # subquery {tp1, tp2, tp3, tp7} joined on ?a
        sub = bs.from_indices([0, 1, 2, 6])
        fast = all_cbds(fig1_graph, sub, Variable("a"))
        slow = sorted(brute_force_cbds(fig1_graph, sub, Variable("a")))
        assert fast == slow
        assert fast  # non-empty


class TestCMDFigure1:
    def test_matches_brute_force(self, fig1_graph):
        fast = sorted(canonical_cmd(c) for c in enumerate_cmds(fig1_graph, fig1_graph.full))
        slow = sorted(canonical_cmd(c) for c in brute_force_cmds(fig1_graph, fig1_graph.full))
        assert len(fast) == len(set(fast))  # Theorem 2: once and only once
        assert fast == slow

    def test_example_4_cmds_present(self, fig1_graph):
        """Example 4: two specific 4-way/3-way cmds on ?a exist."""
        cmds = {
            canonical_cmd(c) for c in enumerate_cmds(fig1_graph, fig1_graph.full)
        }
        a = Variable("a")
        four_way = (
            tuple(
                sorted(
                    (
                        bs.from_indices([0, 4]),  # {tp1, tp5}
                        bs.from_indices([6]),  # {tp7}
                        bs.from_indices([1, 5]),  # {tp2, tp6}
                        bs.from_indices([2, 3]),  # {tp3, tp4}
                    )
                )
            ),
            a,
        )
        three_way = (
            tuple(
                sorted(
                    (
                        bs.from_indices([0, 4, 6]),  # {tp1, tp5, tp7}
                        bs.from_indices([1, 5]),
                        bs.from_indices([2, 3]),
                    )
                )
            ),
            a,
        )
        assert four_way in cmds
        assert three_way in cmds


class TestCMDShapes:
    @pytest.mark.parametrize("size", [2, 3, 4, 5, 6, 7])
    def test_chain(self, size):
        self._check(JoinGraph(chain_query(size)))

    @pytest.mark.parametrize("size", [3, 4, 5, 6, 7])
    def test_cycle(self, size):
        self._check(JoinGraph(cycle_query(size)))

    @pytest.mark.parametrize("size", [2, 3, 4, 5, 6])
    def test_star(self, size):
        self._check(JoinGraph(star_query(size)))

    @pytest.mark.parametrize("size", [3, 4, 5, 6, 7])
    def test_tree(self, size):
        self._check(JoinGraph(tree_query(size, random.Random(size))))

    @pytest.mark.parametrize("size", [4, 5, 6, 7])
    def test_dense(self, size):
        self._check(JoinGraph(dense_query(size, random.Random(size))))

    @staticmethod
    def _check(join_graph):
        fast = sorted(
            canonical_cmd(c) for c in enumerate_cmds(join_graph, join_graph.full)
        )
        slow = sorted(
            canonical_cmd(c) for c in brute_force_cmds(join_graph, join_graph.full)
        )
        assert len(fast) == len(set(fast))
        assert fast == slow


@st.composite
def random_join_graphs(draw):
    """Random connected queries of 2–7 patterns, any shape."""
    shape = draw(
        st.sampled_from(
            [
                QueryShape.CHAIN,
                QueryShape.CYCLE,
                QueryShape.STAR,
                QueryShape.TREE,
                QueryShape.DENSE,
            ]
        )
    )
    minimum = {
        QueryShape.CHAIN: 2,
        QueryShape.CYCLE: 3,
        QueryShape.STAR: 2,
        QueryShape.TREE: 2,
        QueryShape.DENSE: 4,
    }[shape]
    size = draw(st.integers(min_value=minimum, max_value=7))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    query = generate_query(shape, size, random.Random(seed))
    return JoinGraph(query)


class TestCMDProperties:
    @settings(max_examples=60, deadline=None)
    @given(random_join_graphs())
    def test_cbds_match_brute_force(self, join_graph):
        for variable in join_graph.join_variables:
            fast = sorted(enumerate_cbds(join_graph, join_graph.full, variable))
            slow = sorted(brute_force_cbds(join_graph, join_graph.full, variable))
            assert fast == slow

    @settings(max_examples=60, deadline=None)
    @given(random_join_graphs())
    def test_cmds_match_brute_force(self, join_graph):
        fast = sorted(
            canonical_cmd(c) for c in enumerate_cmds(join_graph, join_graph.full)
        )
        slow = sorted(
            canonical_cmd(c) for c in brute_force_cmds(join_graph, join_graph.full)
        )
        assert len(fast) == len(set(fast))
        assert fast == slow

    @settings(max_examples=40, deadline=None)
    @given(random_join_graphs())
    def test_cmds_on_connected_subqueries(self, join_graph):
        """Algorithm 3 is also correct on subqueries, as Algorithm 1 needs."""
        from repro.core.counting import connected_subqueries

        for sub in connected_subqueries(join_graph):
            if bs.popcount(sub) < 2 or bs.popcount(sub) > 5:
                continue
            fast = sorted(canonical_cmd(c) for c in enumerate_cmds(join_graph, sub))
            slow = sorted(canonical_cmd(c) for c in brute_force_cmds(join_graph, sub))
            assert fast == slow


class TestCCMD:
    @settings(max_examples=40, deadline=None)
    @given(random_join_graphs())
    def test_ccmds_are_the_complete_cmds(self, join_graph):
        """Rule 1: ccmd = cmd whose every part has exactly one Ntp pattern."""
        expected = set()
        for parts, variable in brute_force_cmds(join_graph, join_graph.full):
            ntp = join_graph.ntp(variable)
            if len(parts) >= 3 and all(
                bs.popcount(part & ntp) == 1 for part in parts
            ):
                expected.add(canonical_cmd((parts, variable)))
        actual = {
            canonical_cmd(c)
            for c in enumerate_ccmds(join_graph, join_graph.full, minimum_arity=3)
        }
        assert actual == expected

    def test_pruned_space_is_cbds_plus_ccmds(self, fig1_graph):
        pruned = [
            canonical_cmd(c)
            for c in enumerate_cmds_pruned(fig1_graph, fig1_graph.full)
        ]
        assert len(pruned) == len(set(pruned))
        full = {
            canonical_cmd(c) for c in enumerate_cmds(fig1_graph, fig1_graph.full)
        }
        assert set(pruned) <= full
        # every binary cmd survives the pruning
        binary = {c for c in full if len(c[0]) == 2}
        assert binary <= set(pruned)

    def test_star_ccmd_is_single_full_division(self):
        """For a star, the only ccmd is the all-singletons division."""
        join_graph = JoinGraph(star_query(5))
        ccmds = list(enumerate_ccmds(join_graph, join_graph.full, minimum_arity=3))
        assert len(ccmds) == 1
        parts, _ = ccmds[0]
        assert sorted(parts) == [bs.bit(i) for i in range(5)]
