"""Columnar engine tests: dictionary encoding, indexed scans, and the
columnar ≡ reference equivalence across algorithms, partitioners, and
fault-injection seeds."""

import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import StatisticsCatalog, optimize
from repro.core.session import OptimizeOptions, Optimizer
from repro.engine import (
    Cluster,
    EncodedRelation,
    Executor,
    FaultInjector,
    RetryPolicy,
    evaluate_encoded,
    evaluate_reference,
    scan_pattern_encoded,
)
from repro.engine.relations import Relation, greedy_multi_join, hash_join, scan_pattern
from repro.partitioning import (
    DynamicPartitioning,
    HashSubjectObject,
    PathBMC,
    SemanticHash,
    UndirectedOneHop,
)
from repro.rdf import (
    BlankNode,
    Dataset,
    EncodedGraph,
    IRI,
    Literal,
    TermDictionary,
    triple,
)
from repro.rdf.terms import Variable
from repro.rdf.triples import Triple
from repro.sparql.ast import BGPQuery, TriplePattern

ALGORITHMS = ["td-cmd", "td-cmdp", "hgr-td-cmd", "td-auto"]


def make_partitioners(hot_query):
    """The five partitioning methods, dynamic co-locating *hot_query*."""
    return [
        HashSubjectObject(),
        SemanticHash(2),
        PathBMC(),
        UndirectedOneHop(),
        DynamicPartitioning(HashSubjectObject(), [hot_query]),
    ]


def random_dataset(rng: random.Random, vertices: int = 25, edges: int = 80) -> Dataset:
    predicates = [f"http://e/p{i}" for i in range(4)]
    triples = [
        triple(
            f"http://e/v{rng.randrange(vertices)}",
            rng.choice(predicates),
            f"http://e/v{rng.randrange(vertices)}",
        )
        for _ in range(edges)
    ]
    # a few literal objects so encoding covers more than IRIs
    triples += [
        Triple(
            IRI(f"http://e/v{rng.randrange(vertices)}"),
            IRI("http://e/label"),
            Literal(f"name-{i}"),
        )
        for i in range(5)
    ]
    return Dataset.from_triples(triples)


def random_connected_query(rng: random.Random, size: int) -> BGPQuery:
    predicates = [IRI(f"http://e/p{i}") for i in range(4)]
    variables = [Variable("x0")]
    patterns = []
    for i in range(size):
        anchor = rng.choice(variables)
        fresh = Variable(f"x{i + 1}")
        variables.append(fresh)
        if rng.random() < 0.5:
            patterns.append(TriplePattern(anchor, rng.choice(predicates), fresh))
        else:
            patterns.append(TriplePattern(fresh, rng.choice(predicates), anchor))
    return BGPQuery(patterns, name=f"random-{size}")


# ----------------------------------------------------------------------
# TermDictionary
# ----------------------------------------------------------------------
class TestTermDictionary:
    def test_dense_first_seen_ids(self):
        d = TermDictionary()
        a, b = IRI("http://e/a"), IRI("http://e/b")
        assert d.encode(a) == 0
        assert d.encode(b) == 1
        assert d.encode(a) == 0  # idempotent
        assert len(d) == 2
        assert d.decode(0) == a and d.decode(1) == b

    def test_lookup_never_interns(self):
        d = TermDictionary()
        assert d.lookup(IRI("http://e/unseen")) is None
        assert len(d) == 0

    def test_decode_rejects_negative_and_unknown(self):
        d = TermDictionary()
        with pytest.raises(IndexError):
            d.decode(-1)
        with pytest.raises(IndexError):
            d.decode(0)

    def test_same_dataset_same_ids(self):
        triples = [
            triple(f"http://e/v{i % 7}", f"http://e/p{i % 3}", f"http://e/v{i % 5}")
            for i in range(40)
        ]
        first = Dataset.from_triples(list(triples))
        second = Dataset.from_triples(list(triples))
        assert first.dictionary == second.dictionary
        for t in first.graph:
            assert first.dictionary.lookup(t.subject) == second.dictionary.lookup(
                t.subject
            )

    def test_save_load_round_trip_all_term_kinds(self, tmp_path):
        d = TermDictionary()
        terms = [
            IRI("http://e/iri"),
            Literal("plain"),
            Literal("42", datatype="http://www.w3.org/2001/XMLSchema#integer"),
            Literal("bonjour", language="fr"),
            Literal('quo"ted\nnewline'),
            BlankNode("b0"),
        ]
        ids = [d.encode(t) for t in terms]
        path = tmp_path / "dict.json"
        d.save(path)
        loaded = TermDictionary.load(path)
        assert loaded == d
        for term, ident in zip(terms, ids):
            assert loaded.lookup(term) == ident
            assert loaded.decode(ident) == term

    def test_from_payload_rejects_foreign_format(self):
        with pytest.raises(ValueError):
            TermDictionary.from_payload({"format": "something-else", "terms": []})


# ----------------------------------------------------------------------
# Dataset integration (single-pass refresh, encoded graph cache)
# ----------------------------------------------------------------------
class TestDatasetEncoding:
    def test_refresh_feeds_dictionary_in_stats_pass(self):
        dataset = random_dataset(random.Random(7))
        for t in dataset.graph:
            assert dataset.dictionary.lookup(t.subject) is not None
            assert dataset.dictionary.lookup(t.predicate) is not None
            assert dataset.dictionary.lookup(t.object) is not None

    def test_refresh_keeps_existing_ids(self):
        dataset = random_dataset(random.Random(7))
        before = {
            t.subject: dataset.dictionary.lookup(t.subject) for t in dataset.graph
        }
        dataset.graph.add(triple("http://e/new", "http://e/p0", "http://e/v0"))
        dataset.refresh()
        for term, ident in before.items():
            assert dataset.dictionary.lookup(term) == ident
        assert dataset.dictionary.lookup(IRI("http://e/new")) is not None

    def test_encoded_graph_cached_and_invalidated(self):
        dataset = random_dataset(random.Random(7))
        first = dataset.encoded_graph()
        assert dataset.encoded_graph() is first
        assert len(first) == len(dataset.graph)
        dataset.refresh()
        assert dataset.encoded_graph() is not first


# ----------------------------------------------------------------------
# EncodedGraph scans
# ----------------------------------------------------------------------
SCAN_PATTERNS = [
    # every bound/unbound combination, plus repeated variables
    TriplePattern(Variable("s"), Variable("p"), Variable("o")),
    TriplePattern(IRI("http://e/v1"), Variable("p"), Variable("o")),
    TriplePattern(Variable("s"), IRI("http://e/p0"), Variable("o")),
    TriplePattern(Variable("s"), Variable("p"), IRI("http://e/v2")),
    TriplePattern(IRI("http://e/v1"), IRI("http://e/p0"), Variable("o")),
    TriplePattern(IRI("http://e/v1"), Variable("p"), IRI("http://e/v2")),
    TriplePattern(Variable("s"), IRI("http://e/p0"), IRI("http://e/v2")),
    TriplePattern(IRI("http://e/v1"), IRI("http://e/p0"), IRI("http://e/v2")),
    TriplePattern(Variable("x"), IRI("http://e/p0"), Variable("x")),
    TriplePattern(Variable("x"), Variable("p"), Variable("x")),
]


class TestEncodedScan:
    @pytest.mark.parametrize("pattern", SCAN_PATTERNS, ids=str)
    def test_scan_matches_reference(self, pattern):
        rng = random.Random(11)
        dataset = random_dataset(rng, vertices=10, edges=60)
        # add self-loops so repeated-variable patterns have matches
        dataset.graph.add(triple("http://e/v1", "http://e/p0", "http://e/v1"))
        dataset.refresh()
        encoded = dataset.encoded_graph()
        fast = scan_pattern_encoded(encoded, pattern).decode()
        slow = scan_pattern(dataset.graph, pattern)
        assert fast.variables == slow.variables
        assert fast.rows == slow.rows

    def test_unknown_constant_scans_empty(self):
        dataset = random_dataset(random.Random(3))
        pattern = TriplePattern(
            IRI("http://nowhere/x"), IRI("http://e/p0"), Variable("o")
        )
        relation = scan_pattern_encoded(dataset.encoded_graph(), pattern)
        assert len(relation) == 0
        # the unknown constant was not interned by the scan
        assert dataset.dictionary.lookup(IRI("http://nowhere/x")) is None

    def test_index_lookup_matches_triples(self):
        dataset = random_dataset(random.Random(4))
        encoded = dataset.encoded_graph()
        stored = set(encoded.triples())
        for pid in encoded.predicate_ids():
            index = encoded.index_for(pid)
            for s, o in zip(index.spo_subjects, index.spo_objects):
                assert (s, pid, o) in stored
                assert index.contains(s, o)
                assert o in index.objects_for(s)
                assert s in index.subjects_for(o)

    def test_add_ids_invalidates_indexes(self):
        dataset = random_dataset(random.Random(4))
        encoded = dataset.encoded_graph()
        pid = encoded.predicate_ids()[0]
        before = len(encoded.index_for(pid))
        s = dataset.dictionary.encode(IRI("http://e/fresh-subject"))
        o = dataset.dictionary.encode(IRI("http://e/fresh-object"))
        encoded.add_ids(s, pid, o)
        assert len(encoded.index_for(pid)) == before + 1
        assert encoded.index_for(pid).contains(s, o)


# ----------------------------------------------------------------------
# EncodedRelation operators
# ----------------------------------------------------------------------
class TestEncodedRelation:
    def test_project_identity_returns_self(self):
        d = TermDictionary()
        x, y = Variable("x"), Variable("y")
        relation = EncodedRelation([x, y], d, {(1, 2), (3, 4)})
        assert relation.project([y, x]) is relation

    def test_project_subset(self):
        d = TermDictionary()
        x, y = Variable("x"), Variable("y")
        relation = EncodedRelation([x, y], d, {(1, 2), (1, 4)})
        projected = relation.project([x])
        assert projected.variables == (x,)
        assert projected.rows == {(1,)}

    def test_reference_project_identity_returns_self(self):
        x, y = Variable("x"), Variable("y")
        relation = Relation([x, y], {(IRI("http://e/a"), IRI("http://e/b"))})
        assert relation.project([y, x]) is relation

    def test_union_requires_matching_schema(self):
        d = TermDictionary()
        a = EncodedRelation([Variable("x")], d)
        b = EncodedRelation([Variable("y")], d)
        with pytest.raises(ValueError):
            a.union_inplace(b)

    def test_empty_like_keeps_schema_and_dictionary(self):
        d = TermDictionary()
        relation = EncodedRelation([Variable("x")], d, {(1,)})
        fresh = relation.empty_like()
        assert fresh.variables == relation.variables
        assert fresh.dictionary is d
        assert len(fresh) == 0


class TestGreedyMultiJoin:
    def test_picks_smallest_connected_not_first(self):
        def row(*values):
            return tuple(IRI(f"http://e/{v}") for v in values)

        x, y, z = Variable("x"), Variable("y"), Variable("z")
        start = Relation([x], {row(0)})
        big = Relation([x, y], {row(0, i) for i in range(5)})
        small = Relation([x, z], {row(0, i) for i in range(2)})
        joined_sizes = []

        def logging_join(left, right):
            joined_sizes.append(len(right))
            return hash_join(left, right)

        # big is listed before small: the old first-connected rule would
        # join big first; smallest-connected must take small (2 rows)
        result = greedy_multi_join([start, big, small], logging_join)
        assert joined_sizes == [2, 5]
        assert len(result) == 10

    def test_disconnected_inputs_fall_back_to_cartesian(self):
        def row(*values):
            return tuple(IRI(f"http://e/{v}") for v in values)

        a = Relation([Variable("a")], {row(i) for i in range(3)})
        b = Relation([Variable("b")], {row(i) for i in range(2)})
        result = greedy_multi_join([a, b], hash_join)
        assert len(result) == 6

    def test_empty_input_raises(self):
        with pytest.raises(ValueError):
            greedy_multi_join([], hash_join)


# ----------------------------------------------------------------------
# engine selection plumbing
# ----------------------------------------------------------------------
class TestEngineSelection:
    def test_executor_rejects_unknown_engine(self):
        dataset = random_dataset(random.Random(1))
        cluster = Cluster.build(dataset, HashSubjectObject(), cluster_size=2)
        with pytest.raises(ValueError, match="unknown engine"):
            Executor(cluster, engine="vectorized")

    def test_options_reject_unknown_engine(self):
        with pytest.raises(ValueError, match="unknown engine"):
            Optimizer(OptimizeOptions(engine="vectorized"))

    def test_options_accept_all_registered_engines(self):
        from repro.engine import ENGINES

        assert tuple(ENGINES) == ("reference", "columnar", "pipelined")
        for engine in ENGINES:
            assert Optimizer(OptimizeOptions(engine=engine)).options.engine == engine

    def test_options_accept_engine_instance(self):
        from repro.engine import PipelinedEngine

        instance = PipelinedEngine(chunk_size=8)
        assert Optimizer(OptimizeOptions(engine=instance)).options.engine is instance

    def test_mapreduce_simulator_engine(self):
        from repro.engine import COLUMNAR_SHUFFLE_FACTOR, MapReduceSimulator

        reference = MapReduceSimulator()
        columnar = MapReduceSimulator(engine="columnar")
        assert columnar.parameters.beta_repartition == pytest.approx(
            reference.parameters.beta_repartition * COLUMNAR_SHUFFLE_FACTOR
        )
        assert columnar.parameters.alpha == reference.parameters.alpha
        with pytest.raises(ValueError, match="unknown engine"):
            MapReduceSimulator(engine="vectorized")


# ----------------------------------------------------------------------
# columnar ≡ reference, exhaustively and property-based
# ----------------------------------------------------------------------
class TestColumnarEqualsReference:
    @pytest.mark.parametrize("engine", ["columnar", "pipelined"])
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    @pytest.mark.parametrize("method_index", range(5))
    def test_all_algorithms_all_partitioners(self, algorithm, method_index, engine):
        rng = random.Random(42)
        dataset = random_dataset(rng)
        query = random_connected_query(rng, 3)
        method = make_partitioners(query)[method_index]
        reference = evaluate_reference(query, dataset.graph)
        statistics = StatisticsCatalog.from_dataset(query, dataset)
        result = optimize(
            query, algorithm=algorithm, statistics=statistics, partitioning=method
        )
        cluster = Cluster.build(dataset, method, cluster_size=3)
        relation, metrics = Executor(cluster, engine=engine).execute(
            result.plan, query
        )
        assert relation.variables == reference.variables
        assert relation.rows == reference.rows
        assert metrics.result_rows == len(reference)

    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        fault_seed=st.integers(min_value=0, max_value=10_000),
        algorithm=st.sampled_from(ALGORITHMS),
    )
    def test_columnar_equals_reference_under_faults(
        self, seed, fault_seed, algorithm
    ):
        """Same plan, same fault seed: all three engines return the same
        decoded rows even while workers crash and recover mid-query.
        The materialized engines additionally agree on shipped-tuple
        totals and critical path; pipelined joins globally (probe stream
        against deduplicated build tables), so its simulated costs may
        legitimately differ and only the result multiset is compared."""
        rng = random.Random(seed)
        dataset = random_dataset(rng)
        query = random_connected_query(rng, 3)
        method = make_partitioners(query)[seed % 5]
        statistics = StatisticsCatalog.from_dataset(query, dataset)
        result = optimize(
            query, algorithm=algorithm, statistics=statistics, partitioning=method
        )
        outcomes = {}
        for engine in ("reference", "columnar", "pipelined"):
            cluster = Cluster.build(dataset, method, cluster_size=3)
            executor = Executor(
                cluster,
                fault_injector=FaultInjector(0.3, seed=fault_seed),
                retry_policy=RetryPolicy(max_retries=64),
                engine=engine,
            )
            outcomes[engine] = executor.execute(result.plan, query)
        reference_rel, reference_metrics = outcomes["reference"]
        columnar_rel, columnar_metrics = outcomes["columnar"]
        pipelined_rel, _ = outcomes["pipelined"]
        assert columnar_rel.variables == reference_rel.variables
        assert columnar_rel.rows == reference_rel.rows
        assert pipelined_rel.variables == reference_rel.variables
        assert pipelined_rel.rows == reference_rel.rows
        assert (
            columnar_metrics.total_tuples_shipped
            == reference_metrics.total_tuples_shipped
        )
        assert (
            columnar_metrics.critical_path_cost
            == pytest.approx(reference_metrics.critical_path_cost)
        )

    @settings(max_examples=20, deadline=None)
    @given(
        data_seed=st.integers(min_value=0, max_value=10_000),
        query_seed=st.integers(min_value=0, max_value=10_000),
        size=st.integers(min_value=1, max_value=4),
    )
    def test_single_node_oracles_agree(self, data_seed, query_seed, size):
        dataset = random_dataset(random.Random(data_seed))
        query = random_connected_query(random.Random(query_seed), size)
        fast = evaluate_encoded(query, dataset.encoded_graph())
        slow = evaluate_reference(query, dataset.graph)
        assert fast.variables == slow.variables
        assert fast.rows == slow.rows


# ----------------------------------------------------------------------
# recovery re-scans for encoded fragments
# ----------------------------------------------------------------------
class TestFragmentRecovery:
    def test_fail_worker_re_encodes_affected_fragments(self):
        dataset = random_dataset(random.Random(9))
        cluster = Cluster.build(dataset, HashSubjectObject(), cluster_size=3)
        fragments = cluster.worker_fragments()
        assert all(
            len(f) == len(g)
            for f, g in zip(fragments, cluster.worker_graphs())
        )
        target, _ = cluster.fail_worker(0)
        assert len(cluster.worker_fragment(0)) == 0
        assert len(cluster.worker_fragment(target)) == len(
            cluster.worker_graph(target)
        )
        # untouched workers keep their cached fragment object
        untouched = [i for i in range(3) if i not in (0, target)]
        for i in untouched:
            assert cluster.worker_fragment(i) is fragments[i]
        cluster.heal()
        assert sum(len(f) for f in cluster.worker_fragments()) == sum(
            len(g) for g in cluster.worker_graphs()
        )

    def test_fragments_share_the_dataset_dictionary(self):
        dataset = random_dataset(random.Random(9))
        cluster = Cluster.build(dataset, HashSubjectObject(), cluster_size=3)
        for fragment in cluster.worker_fragments():
            assert fragment.dictionary is dataset.dictionary

    def test_route_id_folds_onto_live_workers(self):
        dataset = random_dataset(random.Random(9))
        cluster = Cluster.build(dataset, HashSubjectObject(), cluster_size=4)
        idents = list(range(64))
        before = [cluster.route_id(i) for i in idents]
        assert all(0 <= w < 4 for w in before)
        dead = before[0]
        cluster.fail_worker(dead)
        after = [cluster.route_id(i) for i in idents]
        assert all(w != dead for w in after)
        # routes of ids that did not target the dead worker are stable
        for prev, now in zip(before, after):
            if prev != dead:
                assert now == prev
