"""Tests for the concurrency analyzer (analysis.concurrency).

Each rule (LINT010–LINT014) is exercised on seeded bad source handed to
``analyze_files`` under pretend paths — positive, negative, and
suppression cases — plus the guard-comment grammar, the real-tree-clean
gate (every true positive was fixed in this PR), the CLI driver, and
the dynamic lock-order race detector (ABBA regression, guarded-field
watching, pickle refusal).
"""

import pickle
import subprocess
import sys
import textwrap
import threading
import time
from pathlib import Path

import pytest

from repro.analysis.concurrency import analyze_files, check_concurrency_paths
from repro.analysis.concurrency.model import parse_guard_comments
from repro.analysis.concurrency.runtime import (
    LockOrderRegistry,
    TrackedLock,
    detector_enabled,
    instrument,
)

#: when the suite runs with the global detector on (conftest), Tracer
#: instances are already instrumented against the global registry — the
#: local-registry assertions below would observe the wrong one
needs_uninstrumented = pytest.mark.skipif(
    detector_enabled(), reason="global lock detector owns instrumentation"
)

SRC_REPRO = Path(__file__).resolve().parent.parent / "src" / "repro"

#: pretend paths — LINT014 scoping is path-based (hot modules only)
HOT = "src/repro/core/enumeration.py"
COLD = "src/repro/core/cost.py"
ENGINE_HOT = "src/repro/engine/executor.py"


def diags(*files, select=None):
    return analyze_files(
        [(path, textwrap.dedent(source)) for path, source in files], select=select
    )


def codes(*files, select=None):
    return [d.code for d in diags(*files, select=select)]


# ----------------------------------------------------------------------
# LINT010 — guarded-by lock discipline
# ----------------------------------------------------------------------

GUARDED_CLASS = """
import threading


class Counter:
    def __init__(self):
        self._lock = threading.Lock()
        self._value = 0  #: guarded-by: _lock

    {body}
"""


def guarded(body):
    return GUARDED_CLASS.format(body=textwrap.dedent(body).replace("\n", "\n    "))


class TestLint010GuardedBy:
    def test_unlocked_write_flagged(self):
        src = guarded(
            """
            def bump(self):
                self._value += 1
            """
        )
        found = diags((COLD, src), select={"LINT010"})
        assert [f.code for f in found] == ["LINT010"]
        assert "Counter._value" in found[0].message
        assert "_lock" in found[0].message

    def test_unlocked_read_flagged(self):
        src = guarded(
            """
            def peek(self):
                return self._value
            """
        )
        assert codes((COLD, src), select={"LINT010"}) == ["LINT010"]

    def test_locked_access_clean(self):
        src = guarded(
            """
            def bump(self):
                with self._lock:
                    self._value += 1
            """
        )
        assert codes((COLD, src), select={"LINT010"}) == []

    def test_init_is_exempt(self):
        # the constructor's writes predate publication — GUARDED_CLASS
        # itself assigns self._value unlocked in __init__
        src = guarded(
            """
            def noop(self):
                pass
            """
        )
        assert codes((COLD, src), select={"LINT010"}) == []

    def test_private_helper_inherits_lock_from_call_sites(self):
        # the classic _locked-helper pattern: every intra-class call
        # site holds the lock, so the helper is analyzed as holding it
        src = guarded(
            """
            def bump(self):
                with self._lock:
                    self._bump_locked()

            def _bump_locked(self):
                self._value += 1
            """
        )
        assert codes((COLD, src), select={"LINT010"}) == []

    def test_public_helper_never_inherits_the_lock(self):
        # public methods are externally callable: holding the lock at
        # the one internal call site proves nothing
        src = guarded(
            """
            def bump(self):
                with self._lock:
                    self.bump_unlocked()

            def bump_unlocked(self):
                self._value += 1
            """
        )
        assert codes((COLD, src), select={"LINT010"}) == ["LINT010"]

    def test_suppression_with_justification(self):
        src = guarded(
            """
            def peek(self):
                return self._value  # lint: disable=LINT010 racy read is advisory-only
            """
        )
        assert codes((COLD, src), select={"LINT010"}) == []


# ----------------------------------------------------------------------
# LINT011 — blocking call while holding a lock
# ----------------------------------------------------------------------


class TestLint011BlockingUnderLock:
    def test_future_result_under_lock_flagged(self):
        src = guarded(
            """
            def wait_for(self, future):
                with self._lock:
                    return future.result()
            """
        )
        found = diags((COLD, src), select={"LINT011"})
        assert [f.code for f in found] == ["LINT011"]
        assert "future.result" in found[0].message

    def test_queue_get_under_module_level_lock_flagged(self):
        src = """
        import threading

        state_lock = threading.Lock()

        def drain(task_queue):
            with state_lock:
                return task_queue.get()
        """
        assert codes((COLD, src), select={"LINT011"}) == ["LINT011"]

    def test_result_outside_lock_clean(self):
        src = guarded(
            """
            def wait_for(self, future):
                with self._lock:
                    pending = True
                return future.result()
            """
        )
        assert codes((COLD, src), select={"LINT011"}) == []

    def test_str_join_is_not_a_thread_join(self):
        src = guarded(
            """
            def render(self, parts):
                with self._lock:
                    return ", ".join(parts)
            """
        )
        assert codes((COLD, src), select={"LINT011"}) == []

    def test_suppression_with_justification(self):
        src = guarded(
            """
            def wait_for(self, future):
                with self._lock:
                    return future.result()  # lint: disable=LINT011 future completes in-process, bounded
            """
        )
        assert codes((COLD, src), select={"LINT011"}) == []


# ----------------------------------------------------------------------
# LINT012 — unpicklable values reaching a process boundary
# ----------------------------------------------------------------------


class TestLint012PickleSafety:
    def test_lambda_submitted_to_pool_flagged(self):
        src = """
        from concurrent.futures import ProcessPoolExecutor

        def run():
            with ProcessPoolExecutor() as pool:
                return pool.submit(lambda: 1).result()
        """
        found = diags((COLD, src), select={"LINT012"})
        assert [f.code for f in found] == ["LINT012"]
        assert "lambda" in found[0].message

    def test_lock_argument_flagged_through_assignment(self):
        src = """
        import threading
        from concurrent.futures import ProcessPoolExecutor

        def run(work):
            guard = threading.Lock()
            with ProcessPoolExecutor() as pool:
                return pool.submit(work, guard)
        """
        assert codes((COLD, src), select={"LINT012"}) == ["LINT012"]

    def test_process_target_lambda_flagged(self):
        src = """
        from multiprocessing import Process

        def spawn():
            worker = Process(target=lambda: 1)
            worker.start()
        """
        assert codes((COLD, src), select={"LINT012"}) == ["LINT012"]

    def test_plain_picklable_args_clean(self):
        src = """
        from concurrent.futures import ProcessPoolExecutor

        def run(work):
            with ProcessPoolExecutor() as pool:
                return pool.submit(work, 42, "query")
        """
        assert codes((COLD, src), select={"LINT012"}) == []

    def test_suppression_with_justification(self):
        src = """
        from concurrent.futures import ProcessPoolExecutor

        def run():
            with ProcessPoolExecutor() as pool:
                return pool.submit(lambda: 1)  # lint: disable=LINT012 fork start method shares the closure
        """
        assert codes((COLD, src), select={"LINT012"}) == []


# ----------------------------------------------------------------------
# LINT013 — mutated module globals read in worker entry code
# ----------------------------------------------------------------------


class TestLint013WorkerGlobals:
    def test_mutated_global_read_in_entry_flagged(self):
        src = """
        from concurrent.futures import ProcessPoolExecutor

        CACHE = {}

        def configure(key, value):
            CACHE[key] = value

        def work(item):
            return CACHE.get(item, 0)

        def driver(items):
            with ProcessPoolExecutor() as pool:
                return list(pool.map(work, items))
        """
        found = diags((COLD, src), select={"LINT013"})
        assert [f.code for f in found] == ["LINT013"]
        assert "CACHE" in found[0].message

    def test_read_through_same_module_callee_flagged(self):
        src = """
        from concurrent.futures import ProcessPoolExecutor

        CACHE = {}

        def configure(key, value):
            CACHE[key] = value

        def lookup(item):
            return CACHE.get(item, 0)

        def work(item):
            return lookup(item)

        def driver(items):
            with ProcessPoolExecutor() as pool:
                return list(pool.map(work, items))
        """
        assert codes((COLD, src), select={"LINT013"}) == ["LINT013"]

    def test_unmutated_global_clean(self):
        src = """
        from concurrent.futures import ProcessPoolExecutor

        LIMITS = {"depth": 4}

        def work(item):
            return LIMITS.get("depth")

        def driver(items):
            with ProcessPoolExecutor() as pool:
                return list(pool.map(work, items))
        """
        assert codes((COLD, src), select={"LINT013"}) == []

    def test_no_submission_site_clean(self):
        src = """
        CACHE = {}

        def configure(key, value):
            CACHE[key] = value

        def work(item):
            return CACHE.get(item, 0)
        """
        assert codes((COLD, src), select={"LINT013"}) == []


# ----------------------------------------------------------------------
# LINT014 — cancellation-poll reachability
# ----------------------------------------------------------------------

ENTRY = """
class Optimizer:
    def __init__(self, budget):
        self.budget = budget

    def optimize(self):
        return search(self.budget)


"""


class TestLint014CancellationPolls:
    def test_unbounded_loop_without_poll_flagged(self):
        src = ENTRY + textwrap.dedent(
            """
            def search(budget):
                frontier = [1]
                while frontier:
                    item = frontier.pop()
                    expand(frontier, item)
                return frontier
            """
        )
        found = diags((HOT, src), select={"LINT014"})
        assert [f.code for f in found] == ["LINT014"]
        assert "never polls the budget" in found[0].message

    def test_direct_poll_is_clean(self):
        src = ENTRY + textwrap.dedent(
            """
            def search(budget):
                frontier = [1]
                while frontier:
                    budget.check_cancelled("search")
                    item = frontier.pop()
                    expand(frontier, item)
                return frontier
            """
        )
        assert codes((HOT, src), select={"LINT014"}) == []

    def test_poll_through_callee_is_clean(self):
        src = ENTRY + textwrap.dedent(
            """
            def tick(budget):
                budget.check_deadline("search")

            def search(budget):
                frontier = [1]
                while frontier:
                    tick(budget)
                    item = frontier.pop()
                    expand(frontier, item)
                return frontier
            """
        )
        assert codes((HOT, src), select={"LINT014"}) == []

    def test_unreachable_loop_is_not_flagged(self):
        # no Optimizer.optimize / Executor.execute in the project: the
        # loop is not on a governed path
        src = """
        def search(budget):
            frontier = [1]
            while frontier:
                item = frontier.pop()
                expand(frontier, item)
            return frontier
        """
        assert codes((HOT, src), select={"LINT014"}) == []

    def test_cold_module_is_not_flagged(self):
        src = ENTRY + textwrap.dedent(
            """
            def search(budget):
                frontier = [1]
                while frontier:
                    item = frontier.pop()
                    expand(frontier, item)
                return frontier
            """
        )
        assert codes((COLD, src), select={"LINT014"}) == []

    def test_generator_loop_is_exempt(self):
        # control returns to the consumer every iteration: the
        # consuming loop carries the polling obligation
        src = ENTRY + textwrap.dedent(
            """
            def search(budget):
                for plan in stream(budget):
                    budget.check_cancelled("drain")
                return None

            def stream(budget):
                while True:
                    yield probe()
            """
        )
        assert codes((HOT, src), select={"LINT014"}) == []

    def test_small_bounded_for_is_exempt(self):
        # iterates an in-memory name, tiny body, no calls that loop:
        # per-iteration work is O(1)-ish, no poll required
        src = ENTRY + textwrap.dedent(
            """
            def search(budget):
                total = 0
                parts = budget
                for item in parts:
                    total = total + item
                return total
            """
        )
        assert codes((HOT, src), select={"LINT014"}) == []

    def test_suppression_with_justification(self):
        src = ENTRY + textwrap.dedent(
            """
            def search(budget):
                frontier = [1]
                while frontier:  # lint: disable=LINT014 bounded by bitset width
                    item = frontier.pop()
                    expand(frontier, item)
                return frontier
            """
        )
        assert codes((HOT, src), select={"LINT014"}) == []


# ----------------------------------------------------------------------
# shared machinery
# ----------------------------------------------------------------------


class TestGuardCommentGrammar:
    def test_trailing_and_standalone_declarations(self):
        source = (
            "class C:\n"
            "    def __init__(self):\n"
            "        self.a = 0  #: guarded-by: _lock\n"
            "        #: guarded-by: _mutex\n"
            "        self.b = 1\n"
            "        self.c = 2\n"
        )
        guards = parse_guard_comments(source)
        assert guards[3] == "_lock"  # trailing: declares its own line
        assert guards[5] == "_mutex"  # standalone: declares the next line
        assert 6 not in guards

    def test_syntax_error_is_one_finding(self):
        found = diags((COLD, "def broken(:\n"))
        assert [f.code for f in found] == ["LINT000"]


class TestRealTree:
    def test_src_repro_is_clean_and_fast(self):
        started = time.perf_counter()
        findings = check_concurrency_paths([SRC_REPRO])
        elapsed = time.perf_counter() - started
        assert findings == [], "\n".join(f.render() for f in findings)
        assert elapsed < 10.0, f"analyzer took {elapsed:.1f}s over src/repro"

    def test_cli_driver(self, tmp_path):
        clean = subprocess.run(
            [sys.executable, "-m", "repro", "check-concurrency", "src/repro"],
            capture_output=True, text=True,
        )
        assert clean.returncode == 0, clean.stdout + clean.stderr
        assert "clean" in clean.stdout
        bad = tmp_path / "core" / "enumeration.py"
        bad.parent.mkdir()
        bad.write_text(
            textwrap.dedent(ENTRY)
            + "def search(budget):\n"
            + "    while True:\n"
            + "        step()\n",
            encoding="utf-8",
        )
        dirty = subprocess.run(
            [sys.executable, "-m", "repro", "check-concurrency", str(tmp_path)],
            capture_output=True, text=True,
        )
        assert dirty.returncode == 1
        assert "LINT014" in dirty.stdout


# ----------------------------------------------------------------------
# dynamic lock-order race detector
# ----------------------------------------------------------------------


class TestLockOrderDetector:
    def test_abba_cycle_detected(self):
        # the canonical deadlock: thread 1 takes A then B, thread 2
        # takes B then A — the order graph must contain the A/B cycle
        registry = LockOrderRegistry()
        lock_a = TrackedLock("A", registry)
        lock_b = TrackedLock("B", registry)

        def a_then_b():
            with lock_a:
                with lock_b:
                    pass

        def b_then_a():
            with lock_b:
                with lock_a:
                    pass

        first = threading.Thread(target=a_then_b)
        first.start()
        first.join()
        second = threading.Thread(target=b_then_a)
        second.start()
        second.join()
        assert registry.cycles() == [["A", "B", "A"]]
        with pytest.raises(AssertionError, match="lock-order cycles"):
            registry.assert_clean()

    def test_consistent_hierarchy_is_clean(self):
        registry = LockOrderRegistry()
        outer = TrackedLock("outer", registry)
        inner = TrackedLock("inner", registry)
        for _ in range(3):
            with outer:
                with inner:
                    pass
        assert registry.cycles() == []
        registry.assert_clean()
        assert registry.edges() == {("outer", "inner"): 3}

    @needs_uninstrumented
    def test_guarded_field_access_without_lock_recorded(self):
        from repro.observability.spans import Tracer

        registry = LockOrderRegistry()
        tracer = instrument(Tracer(), registry)
        # locked access is fine
        with tracer._lock:
            _ = tracer._spans
        assert registry.violations == []
        # a raw read bypassing the declared lock is a violation
        _ = tracer._spans
        assert any("Tracer._spans" in v for v in registry.violations)
        with pytest.raises(AssertionError, match="without the declared lock"):
            registry.assert_clean()

    @needs_uninstrumented
    def test_instrumented_tracer_still_works(self):
        from repro.observability.spans import Tracer

        registry = LockOrderRegistry()
        tracer = instrument(Tracer(), registry)
        with tracer.span("unit-test"):
            pass
        assert registry.cycles() == []

    def test_tracked_lock_refuses_to_pickle(self):
        registry = LockOrderRegistry()
        lock = TrackedLock("X", registry)
        with pytest.raises(TypeError, match="LINT012"):
            pickle.dumps(lock)

    def test_graph_artifact_payload_shape(self):
        registry = LockOrderRegistry()
        with TrackedLock("A", registry):
            with TrackedLock("B", registry):
                pass
        payload = registry.to_payload()
        assert payload["edges"] == [{"from": "A", "to": "B", "count": 1}]
        assert payload["cycles"] == []
        assert payload["violations"] == []
