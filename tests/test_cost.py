"""Tests for the cost model (Tables I and II, Eqs. 3–4)."""

import pytest

from repro.core import JoinGraph
from repro.core.cardinality import CardinalityEstimator, StatisticsCatalog
from repro.core.cost import CostParameters, PAPER_PARAMETERS, PlanBuilder
from repro.core.plans import JoinAlgorithm
from repro.workloads.generators import chain_query


class TestTableII:
    def test_paper_parameters(self):
        p = PAPER_PARAMETERS
        assert p.alpha == 0.02
        assert p.beta_broadcast == 0.05
        assert p.beta_repartition == 0.1
        assert p.gamma_local == 0.004
        assert p.gamma_broadcast == 0.008
        assert p.gamma_repartition == 0.005
        assert p.cluster_size == 10


class TestTableI:
    """The three operator cost formulas, computed by hand."""

    inputs = [100.0, 300.0]
    output = 50.0

    def test_local(self):
        cost = PAPER_PARAMETERS.operator_cost(
            JoinAlgorithm.LOCAL, self.inputs, self.output
        )
        assert cost == pytest.approx(0.02 * 400 + 0 + 0.004 * 50)

    def test_broadcast(self):
        cost = PAPER_PARAMETERS.operator_cost(
            JoinAlgorithm.BROADCAST, self.inputs, self.output
        )
        # beta_B * (sum - max) * n
        assert cost == pytest.approx(0.02 * 400 + 0.05 * 100 * 10 + 0.008 * 50)

    def test_repartition(self):
        cost = PAPER_PARAMETERS.operator_cost(
            JoinAlgorithm.REPARTITION, self.inputs, self.output
        )
        assert cost == pytest.approx(0.02 * 400 + 0.1 * 400 + 0.005 * 50)

    def test_broadcast_ships_all_but_largest(self):
        p = PAPER_PARAMETERS
        three = [10.0, 20.0, 70.0]
        assert p.transfer_cost(JoinAlgorithm.BROADCAST, three) == pytest.approx(
            0.05 * 30 * 10
        )

    def test_local_has_no_transfer(self):
        assert PAPER_PARAMETERS.transfer_cost(JoinAlgorithm.LOCAL, [5.0]) == 0.0


class TestPlanBuilder:
    @pytest.fixture
    def builder(self):
        q = chain_query(3)
        jg = JoinGraph(q)
        catalog = StatisticsCatalog.uniform(q, cardinality=100.0)
        return PlanBuilder(jg, CardinalityEstimator(jg, catalog))

    def test_scan_has_zero_cost(self, builder):
        scan = builder.scan(0)
        assert scan.cost == 0.0
        assert scan.cardinality == 100.0

    def test_join_cost_is_max_child_plus_operator(self, builder):
        """Eq. 3: C(p) = max(children) + C(op)."""
        s0, s1, s2 = (builder.scan(i) for i in range(3))
        inner = builder.join(JoinAlgorithm.REPARTITION, [s0, s1])
        outer = builder.join(JoinAlgorithm.REPARTITION, [inner, s2])
        assert outer.cost == pytest.approx(
            max(inner.cost, s2.cost) + outer.operator_cost
        )

    def test_join_requires_two_children(self, builder):
        with pytest.raises(ValueError):
            builder.join(JoinAlgorithm.LOCAL, [builder.scan(0)])

    def test_join_rejects_overlap(self, builder):
        with pytest.raises(ValueError):
            builder.join(
                JoinAlgorithm.LOCAL, [builder.scan(0), builder.scan(0)]
            )

    def test_local_join_plan_is_flat(self, builder):
        plan = builder.local_join_plan(0b111)
        assert plan.depth() == 1
        assert plan.algorithm is JoinAlgorithm.LOCAL
        assert plan.arity == 3

    def test_local_join_plan_of_singleton_is_scan(self, builder):
        plan = builder.local_join_plan(0b010)
        assert plan.depth() == 0

    def test_cluster_size_scales_broadcast(self):
        q = chain_query(2)
        jg = JoinGraph(q)
        catalog = StatisticsCatalog.uniform(q, cardinality=100.0)
        small = PlanBuilder(
            jg, CardinalityEstimator(jg, catalog), CostParameters(cluster_size=2)
        )
        large = PlanBuilder(
            jg, CardinalityEstimator(jg, catalog), CostParameters(cluster_size=50)
        )
        join_small = small.join(
            JoinAlgorithm.BROADCAST, [small.scan(0), small.scan(1)]
        )
        join_large = large.join(
            JoinAlgorithm.BROADCAST, [large.scan(0), large.scan(1)]
        )
        assert join_large.cost > join_small.cost
