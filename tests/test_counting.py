"""Tests for T(Q) counting and the closed forms of Eqs. 7–9."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import JoinGraph
from repro.core import bitset as bs
from repro.core.counting import (
    bell_number,
    connected_subqueries,
    count_cmds,
    count_connected_subqueries,
    measured_t,
    t_chain,
    t_cycle,
    t_star,
)
from repro.workloads.generators import chain_query, cycle_query, star_query, tree_query


class TestBellNumbers:
    def test_known_values(self):
        # OEIS A000110
        assert [bell_number(k) for k in range(8)] == [1, 1, 2, 5, 15, 52, 203, 877]

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            bell_number(-1)


class TestClosedForms:
    """Eqs. 7–9 must agree with enumeration — the strongest single piece
    of evidence that Algorithms 2/3 are implemented correctly."""

    @pytest.mark.parametrize("n", range(2, 9))
    def test_chain(self, n):
        assert measured_t(JoinGraph(chain_query(n))) == t_chain(n)

    @pytest.mark.parametrize("n", range(3, 9))
    def test_cycle(self, n):
        assert measured_t(JoinGraph(cycle_query(n))) == t_cycle(n)

    @pytest.mark.parametrize("n", range(2, 9))
    def test_star(self, n):
        assert measured_t(JoinGraph(star_query(n))) == t_star(n)

    def test_formula_spot_values(self):
        # hand-derived in the reproduction notes
        assert t_chain(2) == 1 and t_chain(3) == 4
        assert t_cycle(3) == 9
        assert t_star(3) == 7

    def test_growth_ordering(self):
        """Star space explodes fastest, chain slowest (Section III-D)."""
        for n in range(4, 12):
            assert t_chain(n) < t_cycle(n) < t_star(n)


class TestConnectedSubqueries:
    def test_chain_count(self):
        # a chain of n has n(n+1)/2 connected subqueries (contiguous runs)
        for n in range(2, 8):
            jg = JoinGraph(chain_query(n))
            assert count_connected_subqueries(jg) == n * (n + 1) // 2

    def test_star_count(self):
        # every non-empty subset of a star is connected: 2^n - 1
        for n in range(2, 8):
            jg = JoinGraph(star_query(n))
            assert count_connected_subqueries(jg) == 2**n - 1

    def test_cycle_count(self):
        # contiguous arcs of length 1..n-1 (n each) plus the full cycle
        for n in range(3, 8):
            jg = JoinGraph(cycle_query(n))
            assert count_connected_subqueries(jg) == n * (n - 1) + 1

    def test_all_yields_are_connected_and_unique(self):
        jg = JoinGraph(tree_query(7, random.Random(1)))
        seen = list(connected_subqueries(jg))
        assert len(seen) == len(set(seen))
        for sub in seen:
            assert jg.is_connected(sub)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=2, max_value=7), st.integers(min_value=0, max_value=999))
    def test_matches_brute_force(self, size, seed):
        jg = JoinGraph(tree_query(size, random.Random(seed)))
        expected = {
            sub
            for sub in bs.iter_subsets(jg.full)
            if jg.is_connected(sub)
        }
        assert set(connected_subqueries(jg)) == expected


class TestCountCmds:
    def test_count_cmds_of_star(self):
        jg = JoinGraph(star_query(4))
        # D_cmd of the full 4-star = B_4 - 1 = 14
        assert count_cmds(jg, jg.full) == bell_number(4) - 1

    def test_count_cmds_of_two_chain(self):
        jg = JoinGraph(chain_query(2))
        assert count_cmds(jg, jg.full) == 1
