"""Unit tests for Dataset statistics."""

from repro.rdf import Dataset, IRI, triple


def make_dataset():
    return Dataset.from_triples(
        [
            triple("http://e/a", "http://e/p", "http://e/b"),
            triple("http://e/a", "http://e/p", "http://e/c"),
            triple("http://e/x", "http://e/p", "http://e/b"),
            triple("http://e/a", "http://e/q", "http://e/b"),
        ],
        name="stats",
    )


class TestDataset:
    def test_triple_count(self):
        assert make_dataset().triple_count == 4

    def test_predicate_statistics(self):
        ds = make_dataset()
        stats = ds.predicate_statistics(IRI("http://e/p"))
        assert stats.triple_count == 3
        assert stats.distinct_subjects == 2
        assert stats.distinct_objects == 2

    def test_unseen_predicate_zeroes(self):
        stats = make_dataset().predicate_statistics(IRI("http://e/nope"))
        assert stats.triple_count == 0
        assert stats.distinct_subjects == 0

    def test_predicate_cardinality(self):
        assert make_dataset().predicate_cardinality(IRI("http://e/q")) == 1

    def test_refresh_after_mutation(self):
        ds = make_dataset()
        ds.graph.add(triple("http://e/z", "http://e/q", "http://e/w"))
        assert ds.predicate_cardinality(IRI("http://e/q")) == 1  # stale
        ds.refresh()
        assert ds.predicate_cardinality(IRI("http://e/q")) == 2

    def test_repr(self):
        assert "stats" in repr(make_dataset())
