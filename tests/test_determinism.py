"""Determinism and round-trip properties across the stack."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro import parse_query
from repro.core import optimize
from repro.core.plans import plan_signature
from repro.partitioning import HashSubjectObject
from repro.rdf.terms import IRI, Literal, Variable
from repro.sparql.ast import BGPQuery, TriplePattern
from repro.workloads.generators import generate_query
from repro.core.join_graph import QueryShape


class TestOptimizerDeterminism:
    @pytest.mark.parametrize("algorithm", ["td-cmd", "td-cmdp", "hgr-td-cmd", "td-auto"])
    def test_same_inputs_same_plan(self, fig1_query, algorithm):
        a = optimize(fig1_query, algorithm=algorithm, seed=5,
                     partitioning=HashSubjectObject())
        b = optimize(fig1_query, algorithm=algorithm, seed=5,
                     partitioning=HashSubjectObject())
        assert plan_signature(a.plan) == plan_signature(b.plan)
        assert a.cost == b.cost
        assert a.stats.plans_considered == b.stats.plans_considered

    def test_generator_determinism(self):
        for shape in (QueryShape.TREE, QueryShape.DENSE):
            q1 = generate_query(shape, 9, random.Random(3))
            q2 = generate_query(shape, 9, random.Random(3))
            assert [str(tp) for tp in q1] == [str(tp) for tp in q2]


# hypothesis strategies for parser round-trips -------------------------------
_names = st.text(
    alphabet="abcdefghij", min_size=1, max_size=6
)
_iris = st.builds(lambda s: IRI(f"http://e/{s}"), _names)
_variables = st.builds(Variable, _names)
_literals = st.builds(
    Literal,
    st.text(alphabet="abc xyz0123", max_size=8),
    st.just(""),
    st.sampled_from(["", "en", "de"]),
)
_subjects = st.one_of(_iris, _variables)
_objects = st.one_of(_iris, _variables, _literals)


@st.composite
def _queries(draw):
    n = draw(st.integers(min_value=1, max_value=5))
    patterns = []
    for _ in range(n):
        patterns.append(
            TriplePattern(draw(_subjects), draw(_iris), draw(_objects))
        )
    return BGPQuery(patterns)


class TestParserRoundTrip:
    @settings(max_examples=80, deadline=None)
    @given(_queries())
    def test_str_parse_round_trip(self, query):
        """str(BGPQuery) is valid SPARQL that parses back to the same query."""
        reparsed = parse_query(str(query))
        assert len(reparsed) == len(query)
        assert [tp.terms() for tp in reparsed] == [tp.terms() for tp in query]
        assert set(reparsed.projection) == set(query.projection)

    @settings(max_examples=40, deadline=None)
    @given(_queries())
    def test_round_trip_preserves_join_variables(self, query):
        from repro.core import JoinGraph

        reparsed = parse_query(str(query))
        assert set(JoinGraph(reparsed).join_variables) == set(
            JoinGraph(query).join_variables if len(query) > 0 else set()
        )
