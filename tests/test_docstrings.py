"""Quality gate: every public item in the library carries a docstring."""

import importlib
import inspect
import pkgutil

import pytest

import repro

MODULES = [
    name
    for _, name, _ in pkgutil.walk_packages(repro.__path__, prefix="repro.")
    if not name.split(".")[-1].startswith("_")
]


def public_members(module):
    for name, member in vars(module).items():
        if name.startswith("_"):
            continue
        if inspect.getmodule(member) is not module:
            continue  # re-export; documented at its home
        if inspect.isclass(member) or inspect.isfunction(member):
            yield name, member


@pytest.mark.parametrize("module_name", MODULES)
def test_module_has_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__, f"{module_name} lacks a module docstring"


@pytest.mark.parametrize("module_name", MODULES)
def test_public_items_have_docstrings(module_name):
    module = importlib.import_module(module_name)
    missing = []
    for name, member in public_members(module):
        if not inspect.getdoc(member):
            missing.append(name)
        if inspect.isclass(member):
            for method_name, method in vars(member).items():
                if method_name.startswith("_"):
                    continue
                if not (inspect.isfunction(method) or isinstance(method, property)):
                    continue
                target = method.fget if isinstance(method, property) else method
                if target is not None and not inspect.getdoc(target):
                    missing.append(f"{name}.{method_name}")
    assert not missing, f"{module_name}: missing docstrings on {missing}"
