"""Tests for the dynamic (hot-query) partitioning extension."""

import pytest

from repro import parse_query
from repro.core import JoinGraph, LocalQueryIndex, StatisticsCatalog, optimize
from repro.core import bitset as bs
from repro.engine import Cluster, Executor, evaluate_reference
from repro.partitioning import DynamicPartitioning, HashSubjectObject
from repro.partitioning.dynamic import _instantiate, hot_query_matches
from repro.rdf import Dataset, triple
from repro.sparql.ast import BGPQuery


@pytest.fixture
def chain_data():
    triples = []
    for i in range(30):
        triples.append(triple(f"http://e/a{i}", "http://e/p", f"http://e/b{i}"))
        triples.append(triple(f"http://e/b{i}", "http://e/q", f"http://e/c{i}"))
        triples.append(triple(f"http://e/c{i}", "http://e/r", f"http://e/d{i}"))
    return Dataset.from_triples(triples, name="chain-data")


@pytest.fixture
def chain_query_3():
    return parse_query(
        """
        SELECT * WHERE {
          ?x <http://e/p> ?y .
          ?y <http://e/q> ?z .
          ?z <http://e/r> ?w .
        }
        """,
        name="hot-chain",
    )


class TestQuerySide:
    def test_hot_query_enlarges_mlq(self, chain_query_3):
        """A 3-chain is not local under hash-so, but becomes local when
        it is itself a hot query."""
        jg = JoinGraph(chain_query_3)
        static_index = LocalQueryIndex(jg, HashSubjectObject())
        assert not static_index.is_local(jg.full)
        dynamic = DynamicPartitioning(HashSubjectObject(), [chain_query_3])
        dynamic_index = LocalQueryIndex(jg, dynamic)
        assert dynamic_index.is_local(jg.full)

    def test_partial_hot_overlap(self, chain_query_3):
        """Only the connected intersection with the hot query is local."""
        hot = parse_query(
            """
            SELECT * WHERE {
              ?x <http://e/p> ?y .
              ?y <http://e/q> ?z .
            }
            """
        )
        jg = JoinGraph(chain_query_3)
        dynamic = DynamicPartitioning(HashSubjectObject(), [hot])
        index = LocalQueryIndex(jg, dynamic)
        assert index.is_local(bs.from_indices([0, 1]))
        assert not index.is_local(jg.full)

    def test_unrelated_hot_query_changes_nothing(self, chain_query_3):
        hot = parse_query("SELECT * WHERE { ?a <http://e/zzz> ?b . }")
        jg = JoinGraph(chain_query_3)
        static_mlqs = LocalQueryIndex(jg, HashSubjectObject()).maximal_local_queries
        dynamic_mlqs = LocalQueryIndex(
            jg, DynamicPartitioning(HashSubjectObject(), [hot])
        ).maximal_local_queries
        assert set(static_mlqs) == set(dynamic_mlqs)


class TestDataSide:
    def test_execution_correct_and_local(self, chain_data, chain_query_3):
        """With the hot query co-located, the local plan executes
        correctly and ships zero tuples."""
        method = DynamicPartitioning(HashSubjectObject(), [chain_query_3])
        cluster = Cluster.build(chain_data, method, cluster_size=4)
        stats = StatisticsCatalog.from_dataset(chain_query_3, chain_data)
        result = optimize(
            chain_query_3,
            algorithm="td-cmdp",
            statistics=stats,
            partitioning=method,
        )
        relation, metrics = Executor(cluster).execute(result.plan, chain_query_3)
        reference = evaluate_reference(chain_query_3, chain_data.graph)
        assert relation.rows == reference.rows
        assert metrics.total_tuples_shipped == 0

    def test_name_reflects_configuration(self):
        method = DynamicPartitioning(HashSubjectObject(), [])
        assert method.name == "dynamic(hash-so+0hot)"


class TestEncodedHotMatching:
    """The encoded/columnar hot-query matcher must be a drop-in for the
    reference-evaluation path it replaced: same matches, same layout."""

    def _reference_matches(self, dataset, hot):
        """The old `evaluate_reference`-based matching, inlined."""
        bindings = evaluate_reference(
            BGPQuery(hot.patterns, projection=None, name=hot.name),
            dataset.graph,
        )
        matches = []
        for binding in bindings.bindings():
            anchor = min(binding.values(), key=str)
            grounded = []
            for tp in hot.patterns:
                t = _instantiate(tp, binding)
                if t is not None and t in dataset.graph:
                    grounded.append(t)
            matches.append((anchor, grounded))
        return matches

    def _canonical(self, matches):
        return sorted(
            (str(anchor), sorted(map(str, triples))) for anchor, triples in matches
        )

    def test_matches_identical_to_reference_path(self, chain_data, chain_query_3):
        encoded = hot_query_matches(chain_data, chain_query_3)
        reference = self._reference_matches(chain_data, chain_query_3)
        assert self._canonical(encoded) == self._canonical(reference)
        assert len(encoded) == 30  # one match per chain

    def test_matches_identical_on_lubm(self):
        from repro.workloads import generate_lubm, lubm_query

        dataset = generate_lubm()
        hot = lubm_query("L7")
        encoded = hot_query_matches(dataset, hot)
        reference = self._reference_matches(dataset, hot)
        assert self._canonical(encoded) == self._canonical(reference)
        assert encoded  # L7 has matches on the generated data

    def test_partition_layout_unchanged(self, chain_data, chain_query_3):
        """The produced node graphs are bit-identical to replicating the
        reference-path matches by hand."""
        from repro.partitioning.base import hash_term

        cluster_size = 4
        method = DynamicPartitioning(HashSubjectObject(), [chain_query_3])
        layout = method.partition(chain_data, cluster_size)
        expected = HashSubjectObject().partition(chain_data, cluster_size)
        for anchor, triples in self._reference_matches(chain_data, chain_query_3):
            expected.node_graphs[hash_term(anchor, cluster_size)].add_all(triples)
        assert [set(g) for g in layout.node_graphs] == [
            set(g) for g in expected.node_graphs
        ]
