"""Tests for the dynamic (hot-query) partitioning extension."""

import pytest

from repro import parse_query
from repro.core import JoinGraph, LocalQueryIndex, StatisticsCatalog, optimize
from repro.core import bitset as bs
from repro.engine import Cluster, Executor, evaluate_reference
from repro.partitioning import DynamicPartitioning, HashSubjectObject
from repro.rdf import Dataset, triple


@pytest.fixture
def chain_data():
    triples = []
    for i in range(30):
        triples.append(triple(f"http://e/a{i}", "http://e/p", f"http://e/b{i}"))
        triples.append(triple(f"http://e/b{i}", "http://e/q", f"http://e/c{i}"))
        triples.append(triple(f"http://e/c{i}", "http://e/r", f"http://e/d{i}"))
    return Dataset.from_triples(triples, name="chain-data")


@pytest.fixture
def chain_query_3():
    return parse_query(
        """
        SELECT * WHERE {
          ?x <http://e/p> ?y .
          ?y <http://e/q> ?z .
          ?z <http://e/r> ?w .
        }
        """,
        name="hot-chain",
    )


class TestQuerySide:
    def test_hot_query_enlarges_mlq(self, chain_query_3):
        """A 3-chain is not local under hash-so, but becomes local when
        it is itself a hot query."""
        jg = JoinGraph(chain_query_3)
        static_index = LocalQueryIndex(jg, HashSubjectObject())
        assert not static_index.is_local(jg.full)
        dynamic = DynamicPartitioning(HashSubjectObject(), [chain_query_3])
        dynamic_index = LocalQueryIndex(jg, dynamic)
        assert dynamic_index.is_local(jg.full)

    def test_partial_hot_overlap(self, chain_query_3):
        """Only the connected intersection with the hot query is local."""
        hot = parse_query(
            """
            SELECT * WHERE {
              ?x <http://e/p> ?y .
              ?y <http://e/q> ?z .
            }
            """
        )
        jg = JoinGraph(chain_query_3)
        dynamic = DynamicPartitioning(HashSubjectObject(), [hot])
        index = LocalQueryIndex(jg, dynamic)
        assert index.is_local(bs.from_indices([0, 1]))
        assert not index.is_local(jg.full)

    def test_unrelated_hot_query_changes_nothing(self, chain_query_3):
        hot = parse_query("SELECT * WHERE { ?a <http://e/zzz> ?b . }")
        jg = JoinGraph(chain_query_3)
        static_mlqs = LocalQueryIndex(jg, HashSubjectObject()).maximal_local_queries
        dynamic_mlqs = LocalQueryIndex(
            jg, DynamicPartitioning(HashSubjectObject(), [hot])
        ).maximal_local_queries
        assert set(static_mlqs) == set(dynamic_mlqs)


class TestDataSide:
    def test_execution_correct_and_local(self, chain_data, chain_query_3):
        """With the hot query co-located, the local plan executes
        correctly and ships zero tuples."""
        method = DynamicPartitioning(HashSubjectObject(), [chain_query_3])
        cluster = Cluster.build(chain_data, method, cluster_size=4)
        stats = StatisticsCatalog.from_dataset(chain_query_3, chain_data)
        result = optimize(
            chain_query_3,
            algorithm="td-cmdp",
            statistics=stats,
            partitioning=method,
        )
        relation, metrics = Executor(cluster).execute(result.plan, chain_query_3)
        reference = evaluate_reference(chain_query_3, chain_data.graph)
        assert relation.rows == reference.rows
        assert metrics.total_tuples_shipped == 0

    def test_name_reflects_configuration(self):
        method = DynamicPartitioning(HashSubjectObject(), [])
        assert method.name == "dynamic(hash-so+0hot)"
