"""Engine tests: relations, operators, and the distributed-vs-reference
integration suite (the engine's correctness oracle)."""

import random

import pytest

from repro import optimize, parse_query
from repro.core import StatisticsCatalog
from repro.engine import (
    Cluster,
    Executor,
    Relation,
    evaluate_reference,
    hash_join,
    multi_join,
    scan_pattern,
)
from repro.partitioning import (
    HashSubjectObject,
    PathBMC,
    SemanticHash,
    UndirectedOneHop,
)
from repro.rdf import Dataset, IRI, RDFGraph, triple
from repro.rdf.terms import Variable
from repro.sparql.ast import TriplePattern

ALL_METHODS = [HashSubjectObject(), SemanticHash(2), PathBMC(), UndirectedOneHop()]
ALL_ALGORITHMS = ["td-cmd", "td-cmdp", "hgr-td-cmd", "td-auto"]


class TestRelation:
    def test_schema_sorted_and_deduplicated(self):
        r = Relation([Variable("b"), Variable("a"), Variable("b")])
        assert [v.name for v in r.variables] == ["a", "b"]

    def test_add_binding_and_bindings_round_trip(self):
        r = Relation([Variable("x")])
        r.add_binding({Variable("x"): IRI("http://e/a")})
        assert list(r.bindings()) == [{Variable("x"): IRI("http://e/a")}]

    def test_project_collapses_duplicates(self):
        r = Relation([Variable("x"), Variable("y")])
        r.add_binding({Variable("x"): IRI("a"), Variable("y"): IRI("b")})
        r.add_binding({Variable("x"): IRI("a"), Variable("y"): IRI("c")})
        assert len(r.project([Variable("x")])) == 1

    def test_union_requires_same_schema(self):
        a = Relation([Variable("x")])
        b = Relation([Variable("y")])
        with pytest.raises(ValueError):
            a.union_inplace(b)


class TestScan:
    def test_scan_with_constant(self):
        g = RDFGraph([triple("http://e/a", "http://e/p", "http://e/b")])
        tp = TriplePattern(Variable("s"), IRI("http://e/p"), IRI("http://e/b"))
        r = scan_pattern(g, tp)
        assert len(r) == 1

    def test_scan_repeated_variable(self):
        g = RDFGraph(
            [
                triple("http://e/a", "http://e/p", "http://e/a"),  # self loop
                triple("http://e/a", "http://e/p", "http://e/b"),
            ]
        )
        tp = TriplePattern(Variable("x"), IRI("http://e/p"), Variable("x"))
        r = scan_pattern(g, tp)
        assert len(r) == 1  # only the self loop

    def test_scan_variable_predicate(self):
        g = RDFGraph([triple("http://e/a", "http://e/p", "http://e/b")])
        tp = TriplePattern(Variable("s"), Variable("p"), Variable("o"))
        r = scan_pattern(g, tp)
        assert len(r) == 1
        assert len(r.variables) == 3


class TestJoins:
    def _rel(self, var_names, rows):
        r = Relation([Variable(n) for n in var_names])
        for row in rows:
            r.add_binding({Variable(n): IRI(v) for n, v in zip(var_names, row)})
        return r

    def test_hash_join_on_shared_variable(self):
        left = self._rel(["x", "y"], [("a", "b"), ("a", "c")])
        right = self._rel(["y", "z"], [("b", "d"), ("q", "r")])
        out = hash_join(left, right)
        assert len(out) == 1
        ((row),) = list(out.bindings())
        assert row[Variable("z")] == IRI("d")

    def test_hash_join_without_shared_is_cross_product(self):
        left = self._rel(["x"], [("a",), ("b",)])
        right = self._rel(["y"], [("c",), ("d",)])
        assert len(hash_join(left, right)) == 4

    def test_multi_join_order_insensitive(self):
        a = self._rel(["x", "y"], [("1", "2")])
        b = self._rel(["y", "z"], [("2", "3")])
        c = self._rel(["z", "w"], [("3", "4")])
        for perm in ([a, b, c], [c, a, b], [b, c, a]):
            assert len(multi_join(list(perm))) == 1


class TestDistributedCorrectness:
    """Every (partitioning × algorithm) combination must reproduce the
    single-node reference result exactly."""

    @pytest.mark.parametrize("method", ALL_METHODS, ids=lambda m: m.name)
    @pytest.mark.parametrize("algorithm", ALL_ALGORITHMS)
    def test_matches_reference(self, toy_dataset, toy_query, method, algorithm):
        reference = evaluate_reference(toy_query, toy_dataset.graph)
        stats = StatisticsCatalog.from_dataset(toy_query, toy_dataset)
        cluster = Cluster.build(toy_dataset, method, cluster_size=4)
        result = optimize(
            toy_query, algorithm=algorithm, statistics=stats, partitioning=method
        )
        relation, metrics = Executor(cluster).execute(result.plan, toy_query)
        assert relation.rows == reference.rows
        assert metrics.result_rows == len(reference)

    @pytest.mark.parametrize("method", ALL_METHODS, ids=lambda m: m.name)
    def test_star_query_correct(self, toy_dataset, method):
        q = parse_query(
            """
            SELECT * WHERE {
              ?x <http://e/knows> ?a .
              ?x <http://e/type> ?t .
              ?x <http://e/worksFor> ?o .
            }
            """
        )
        reference = evaluate_reference(q, toy_dataset.graph)
        stats = StatisticsCatalog.from_dataset(q, toy_dataset)
        cluster = Cluster.build(toy_dataset, method, cluster_size=3)
        result = optimize(q, statistics=stats, partitioning=method)
        relation, _ = Executor(cluster).execute(result.plan, q)
        assert relation.rows == reference.rows

    def test_local_join_ships_nothing(self, toy_dataset):
        q = parse_query(
            """
            SELECT * WHERE {
              ?x <http://e/knows> ?a .
              ?x <http://e/worksFor> ?o .
            }
            """
        )
        method = HashSubjectObject()  # star at ?x -> local
        stats = StatisticsCatalog.from_dataset(q, toy_dataset)
        cluster = Cluster.build(toy_dataset, method, cluster_size=4)
        result = optimize(q, statistics=stats, partitioning=method)
        relation, metrics = Executor(cluster).execute(result.plan, q)
        assert metrics.total_tuples_shipped == 0
        assert relation.rows == evaluate_reference(q, toy_dataset.graph).rows

    def test_projection_applied(self, toy_dataset, toy_query):
        stats = StatisticsCatalog.from_dataset(toy_query, toy_dataset)
        method = HashSubjectObject()
        cluster = Cluster.build(toy_dataset, method, cluster_size=3)
        result = optimize(toy_query, statistics=stats, partitioning=method)
        relation, _ = Executor(cluster).execute(result.plan, toy_query)
        assert {v.name for v in relation.variables} == {"x", "y", "o"}


class TestMetrics:
    def test_critical_path_positive_for_joins(self, toy_dataset, toy_query):
        stats = StatisticsCatalog.from_dataset(toy_query, toy_dataset)
        method = HashSubjectObject()
        cluster = Cluster.build(toy_dataset, method, cluster_size=3)
        result = optimize(toy_query, statistics=stats, partitioning=method)
        _, metrics = Executor(cluster).execute(result.plan, toy_query)
        assert metrics.critical_path_cost > 0
        assert metrics.total_tuples_read > 0
        assert metrics.wall_seconds > 0
        summary = metrics.summary()
        expected = {
            "result_rows",
            "tuples_read",
            "tuples_shipped",
            "tuples_produced",
            "wall_seconds",
            "simulated_time",
            "first_row_seconds",
        }
        if metrics.total_tuples_shipped:
            expected.add("shipped_by_predicate")
        assert set(summary) == expected
