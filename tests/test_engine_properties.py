"""Property-based engine tests: distributed execution == reference,
for random data, random queries, all partitionings, all optimizers."""

import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import StatisticsCatalog, optimize
from repro.core.join_graph import JoinGraph
from repro.engine import (
    Cluster,
    Executor,
    FailStop,
    FaultInjector,
    RetryPolicy,
    Straggler,
    Transient,
    evaluate_reference,
)
from repro.partitioning import (
    HashSubjectObject,
    PathBMC,
    SemanticHash,
    UndirectedOneHop,
)
from repro.rdf import Dataset, IRI, triple
from repro.rdf.terms import Variable
from repro.sparql.ast import BGPQuery, TriplePattern

METHODS = [HashSubjectObject(), SemanticHash(2), PathBMC(), UndirectedOneHop()]


def random_dataset(rng: random.Random, vertices: int = 25, edges: int = 80) -> Dataset:
    predicates = [f"http://e/p{i}" for i in range(4)]
    triples = [
        triple(
            f"http://e/v{rng.randrange(vertices)}",
            rng.choice(predicates),
            f"http://e/v{rng.randrange(vertices)}",
        )
        for _ in range(edges)
    ]
    return Dataset.from_triples(triples)


def random_connected_query(rng: random.Random, size: int) -> BGPQuery:
    """A random connected query over the same predicate vocabulary."""
    predicates = [IRI(f"http://e/p{i}") for i in range(4)]
    variables = [Variable("x0")]
    patterns = []
    for i in range(size):
        anchor = rng.choice(variables)
        fresh = Variable(f"x{i + 1}")
        variables.append(fresh)
        if rng.random() < 0.5:
            patterns.append(TriplePattern(anchor, rng.choice(predicates), fresh))
        else:
            patterns.append(TriplePattern(fresh, rng.choice(predicates), anchor))
    return BGPQuery(patterns, name=f"random-{size}")


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    data_seed=st.integers(min_value=0, max_value=10_000),
    query_seed=st.integers(min_value=0, max_value=10_000),
    size=st.integers(min_value=2, max_value=5),
    method_index=st.integers(min_value=0, max_value=3),
    algorithm=st.sampled_from(["td-cmd", "td-cmdp", "hgr-td-cmd", "td-auto"]),
)
def test_distributed_equals_reference(
    data_seed, query_seed, size, method_index, algorithm
):
    dataset = random_dataset(random.Random(data_seed))
    query = random_connected_query(random.Random(query_seed), size)
    method = METHODS[method_index]
    reference = evaluate_reference(query, dataset.graph)
    statistics = StatisticsCatalog.from_dataset(query, dataset)
    result = optimize(
        query, algorithm=algorithm, statistics=statistics, partitioning=method
    )
    cluster = Cluster.build(dataset, method, cluster_size=3)
    relation, metrics = Executor(cluster).execute(result.plan, query)
    assert relation.rows == reference.rows
    assert metrics.result_rows == len(reference)


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    cluster_size=st.integers(min_value=1, max_value=6),
)
def test_cluster_size_does_not_change_results(seed, cluster_size):
    rng = random.Random(seed)
    dataset = random_dataset(rng)
    query = random_connected_query(rng, 3)
    method = HashSubjectObject()
    reference = evaluate_reference(query, dataset.graph)
    statistics = StatisticsCatalog.from_dataset(query, dataset)
    result = optimize(query, statistics=statistics, partitioning=method)
    cluster = Cluster.build(dataset, method, cluster_size=cluster_size)
    relation, _ = Executor(cluster).execute(result.plan, query)
    assert relation.rows == reference.rows


FAULT_MODEL_MIXES = [
    None,  # the default mixed taxonomy
    (FailStop(),),
    (Transient(),),
    (Straggler(),),
]


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    fault_seed=st.integers(min_value=0, max_value=10_000),
    mix_index=st.integers(min_value=0, max_value=3),
)
def test_recovered_execution_equals_reference(seed, fault_seed, mix_index):
    """Faulty runs stay exact: for every seed and fault model, the
    recovered execution returns precisely the reference bindings."""
    rng = random.Random(seed)
    dataset = random_dataset(rng)
    query = random_connected_query(rng, 3)
    method = METHODS[seed % len(METHODS)]
    reference = evaluate_reference(query, dataset.graph)
    statistics = StatisticsCatalog.from_dataset(query, dataset)
    result = optimize(query, statistics=statistics, partitioning=method)
    cluster = Cluster.build(dataset, method, cluster_size=4)
    injector = FaultInjector(
        0.35, seed=fault_seed, models=FAULT_MODEL_MIXES[mix_index]
    )
    executor = Executor(
        cluster, fault_injector=injector, retry_policy=RetryPolicy(max_retries=64)
    )
    relation, metrics = executor.execute(result.plan, query)
    assert relation.rows == reference.rows
    assert metrics.fault_injection_enabled
    assert metrics.total_recovery_cost >= 0.0


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_metrics_are_consistent(seed):
    """Shipped tuples can never exceed read tuples scaled by fan-out."""
    rng = random.Random(seed)
    dataset = random_dataset(rng)
    query = random_connected_query(rng, 4)
    method = HashSubjectObject()
    statistics = StatisticsCatalog.from_dataset(query, dataset)
    result = optimize(query, statistics=statistics, partitioning=method)
    cluster = Cluster.build(dataset, method, cluster_size=3)
    _, metrics = Executor(cluster).execute(result.plan, query)
    assert metrics.total_tuples_read >= 0
    assert metrics.total_tuples_shipped >= 0
    assert metrics.critical_path_cost >= 0
    # every operator priced individually contributes non-negative cost
    from repro.core.cost import PAPER_PARAMETERS

    for op in metrics.operators:
        assert op.simulated_cost(PAPER_PARAMETERS) >= 0


# ----------------------------------------------------------------------
# positional kernels == dictionary-based reference semantics
# ----------------------------------------------------------------------
def _reference_scan(graph, pattern):
    """Scan via per-match binding dictionaries (the pre-kernel path)."""
    from repro.engine.relations import Relation

    relation = Relation(pattern.variables())
    for t in graph:
        binding = {}
        ok = True
        for term, value in zip(pattern.terms(), t.terms()):
            if isinstance(term, Variable):
                if binding.get(term, value) != value:
                    ok = False
                    break
                binding[term] = value
            elif term != value:
                ok = False
                break
        if ok:
            relation.add_binding(binding)
    return relation


def _reference_join(left, right):
    """Nested-loop natural join via binding dictionaries."""
    from repro.engine.relations import Relation

    result = Relation(set(left.variables) | set(right.variables))
    for lb in left.bindings():
        for rb in right.bindings():
            if all(lb[v] == rb[v] for v in lb if v in rb):
                merged = dict(lb)
                merged.update(rb)
                result.add_binding(merged)
    return result


@settings(max_examples=20, deadline=None)
@given(
    data_seed=st.integers(min_value=0, max_value=10_000),
    query_seed=st.integers(min_value=0, max_value=10_000),
)
def test_positional_scan_matches_reference(data_seed, query_seed):
    from repro.engine.relations import scan_pattern

    dataset = random_dataset(random.Random(data_seed))
    query = random_connected_query(random.Random(query_seed), 2)
    for pattern in query:
        fast = scan_pattern(dataset.graph, pattern)
        slow = _reference_scan(dataset.graph, pattern)
        assert fast.variables == slow.variables
        assert fast.rows == slow.rows


def test_positional_scan_handles_repeated_variables():
    """?x p ?x must keep only self-loops, in both kernels."""
    from repro.engine.relations import scan_pattern

    dataset = Dataset.from_triples(
        [
            triple("http://e/a", "http://e/p", "http://e/a"),
            triple("http://e/a", "http://e/p", "http://e/b"),
        ]
    )
    x = Variable("x")
    pattern = TriplePattern(x, IRI("http://e/p"), x)
    fast = scan_pattern(dataset.graph, pattern)
    assert fast.rows == _reference_scan(dataset.graph, pattern).rows
    assert len(fast) == 1


@settings(max_examples=20, deadline=None)
@given(
    data_seed=st.integers(min_value=0, max_value=10_000),
    query_seed=st.integers(min_value=0, max_value=10_000),
    size=st.integers(min_value=2, max_value=4),
)
def test_positional_hash_join_matches_reference(data_seed, query_seed, size):
    """hash_join's positional row assembly == nested-loop dict join,
    chained across the patterns of a random connected query."""
    from repro.engine.relations import hash_join, scan_pattern

    dataset = random_dataset(random.Random(data_seed))
    query = random_connected_query(random.Random(query_seed), size)
    scans = [scan_pattern(dataset.graph, tp) for tp in query]
    fast, slow = scans[0], scans[0]
    for scan in scans[1:]:
        fast = hash_join(fast, scan)
        slow = _reference_join(slow, scan)
    assert fast.variables == slow.variables
    assert fast.rows == slow.rows


def test_cartesian_branch_matches_reference():
    """Disjoint-schema joins (no shared variables) stay exact too."""
    from repro.engine.relations import hash_join, scan_pattern

    dataset = random_dataset(random.Random(5))
    a = TriplePattern(Variable("a"), IRI("http://e/p0"), Variable("b"))
    c = TriplePattern(Variable("c"), IRI("http://e/p1"), Variable("d"))
    left = scan_pattern(dataset.graph, a)
    right = scan_pattern(dataset.graph, c)
    fast = hash_join(left, right)
    slow = _reference_join(left, right)
    assert fast.rows == slow.rows
    assert len(fast) == len(left) * len(right)
