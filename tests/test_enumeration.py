"""Tests for the TD-CMD top-down enumerator (Algorithm 1)."""

import itertools
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro import parse_query
from repro.core import (
    CartesianProductError,
    JoinGraph,
    LocalQueryIndex,
    OptimizationTimeout,
    TopDownEnumerator,
)
from repro.core import bitset as bs
from repro.core.cmd import enumerate_cmds
from repro.core.optimizer import make_builder
from repro.core.plans import JoinAlgorithm, JoinNode, validate_plan
from repro.partitioning import HashSubjectObject, PathBMC
from repro.workloads.generators import (
    chain_query,
    cycle_query,
    dense_query,
    generate_query,
    star_query,
    tree_query,
)
from repro.core.join_graph import QueryShape


def exhaustive_best_cost(builder, local_index):
    """Reference optimum: recursively try every cmd and every operator.

    Independent implementation (no memo sharing with the code under
    test) used to prove TD-CMD optimal on small queries.
    """
    jg = builder.join_graph

    def best(bits):
        if bs.popcount(bits) == 1:
            return builder.scan(bs.lowest_index(bits))
        candidates = []
        if local_index.is_local(bits):
            candidates.append(builder.local_join_plan(bits))
        for parts, variable in enumerate_cmds(jg, bits):
            children = [best(p) for p in parts]
            for op in (JoinAlgorithm.BROADCAST, JoinAlgorithm.REPARTITION):
                candidates.append(builder.join(op, children, variable))
        assert candidates, "no plan for connected subquery"
        return min(candidates, key=lambda p: p.cost)

    return best(jg.full).cost


class TestOptimality:
    @pytest.mark.parametrize("seed", range(5))
    def test_matches_exhaustive_on_random_small_queries(self, seed):
        rng = random.Random(seed)
        shape = rng.choice(
            [QueryShape.CHAIN, QueryShape.CYCLE, QueryShape.TREE, QueryShape.DENSE]
        )
        size = rng.randint(4, 6)
        if shape is QueryShape.CYCLE:
            size = max(size, 3)
        query = generate_query(shape, size, rng)
        builder = make_builder(query, seed=seed)
        local_index = LocalQueryIndex(builder.join_graph, HashSubjectObject())
        result = TopDownEnumerator(
            builder.join_graph, builder, local_index
        ).optimize()
        assert result.cost == pytest.approx(
            exhaustive_best_cost(builder, local_index)
        )

    def test_fig1_plan_valid_and_better_than_worst(self, fig1_builder):
        result = TopDownEnumerator(fig1_builder.join_graph, fig1_builder).optimize()
        validate_plan(result.plan, fig1_builder.join_graph.full)
        assert result.cost > 0


class TestPlanInvariants:
    @settings(max_examples=25, deadline=None)
    @given(
        st.sampled_from([QueryShape.CHAIN, QueryShape.TREE, QueryShape.DENSE]),
        st.integers(min_value=4, max_value=7),
        st.integers(min_value=0, max_value=500),
    )
    def test_plans_are_structurally_valid(self, shape, size, seed):
        query = generate_query(shape, size, random.Random(seed))
        builder = make_builder(query, seed=seed)
        result = TopDownEnumerator(builder.join_graph, builder).optimize()
        validate_plan(result.plan, builder.join_graph.full)
        # every join node's children must be a connected division: each
        # child connected and carrying the join variable
        for node in result.plan.joins():
            assert isinstance(node, JoinNode)
            for child in node.children:
                assert builder.join_graph.is_connected(child.bits)
            if node.join_variable is not None:
                ntp = builder.join_graph.ntp(node.join_variable)
                for child in node.children:
                    assert child.bits & ntp

    def test_local_plan_used_when_whole_query_local(self, fig1_builder):
        local_index = LocalQueryIndex(fig1_builder.join_graph, PathBMC())
        # fig1 is NOT local under path partitioning (cycles), but the
        # subquery {tp1, tp3, tp4} is; optimize a query that IS local:
        q = parse_query(
            """
            SELECT * WHERE {
              ?a <http://e/p> ?b .
              ?b <http://e/q> ?c .
            }
            """
        )
        builder = make_builder(q, seed=0)
        index = LocalQueryIndex(builder.join_graph, PathBMC())
        result = TopDownEnumerator(builder.join_graph, builder, index).optimize()
        assert all(
            j.algorithm is JoinAlgorithm.LOCAL for j in result.plan.joins()
        )


class TestMechanics:
    def test_memoization_counts(self, fig1_builder):
        enumerator = TopDownEnumerator(fig1_builder.join_graph, fig1_builder)
        enumerator.optimize()
        assert enumerator.stats.memo_hits > 0
        assert enumerator.stats.subqueries_expanded > 0

    def test_disconnected_query_rejected(self):
        q = parse_query(
            "SELECT * WHERE { ?a <http://e/p> ?b . ?c <http://e/q> ?d . }"
        )
        builder = make_builder(q)
        with pytest.raises(CartesianProductError):
            TopDownEnumerator(builder.join_graph, builder).optimize()

    def test_single_pattern_query(self):
        q = parse_query("SELECT * WHERE { ?a <http://e/p> ?b . }")
        builder = make_builder(q)
        result = TopDownEnumerator(builder.join_graph, builder).optimize()
        assert result.plan.depth() == 0
        assert result.cost == 0.0

    def test_timeout_enforced(self):
        query = star_query(14)
        builder = make_builder(query, seed=0)
        enumerator = TopDownEnumerator(
            builder.join_graph, builder, timeout_seconds=0.01
        )
        with pytest.raises(OptimizationTimeout):
            enumerator.optimize()

    def test_search_space_counts_match_t_for_chains(self):
        """plans_considered = 2 ops × T(Q) for chains with nothing local."""
        from repro.core.counting import t_chain

        n = 6
        builder = make_builder(chain_query(n), seed=3)
        enumerator = TopDownEnumerator(builder.join_graph, builder)
        enumerator.optimize()
        assert enumerator.stats.divisions_enumerated == t_chain(n)
        assert enumerator.stats.plans_considered == 2 * t_chain(n)
