"""Smoke tests: every example script runs end to end.

Examples are the README's contract with users; each is executed as a
subprocess with argument overrides that keep runtimes test-friendly.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[1] / "examples"

CASES = [
    ("quickstart.py", []),
    ("lubm_analytics.py", ["--queries", "L1,L4", "--timeout", "10"]),
    ("partitioning_comparison.py", []),
    ("large_query_optimization.py", ["--max-size", "10", "--timeout", "5"]),
    ("enumeration_deep_dive.py", []),
    ("relational_joins.py", []),
]


@pytest.mark.parametrize("script,args", CASES, ids=[c[0] for c in CASES])
def test_example_runs(script, args):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "example produced no output"


def test_examples_directory_is_covered():
    """Every example script in the repo is exercised by this suite."""
    on_disk = {p.name for p in EXAMPLES.glob("*.py")}
    tested = {script for script, _ in CASES}
    assert on_disk == tested
