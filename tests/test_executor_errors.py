"""Failure injection for the executor and query-graph edge cases."""

import pytest

from repro import parse_query
from repro.core import JoinGraph
from repro.core.plans import JoinAlgorithm, JoinNode, PlanNode, ScanNode
from repro.engine import Cluster, ExecutionError, Executor
from repro.engine.relations import Relation
from repro.partitioning import HashSubjectObject
from repro.rdf import Dataset, IRI, triple
from repro.rdf.terms import Variable
from repro.sparql.ast import TriplePattern
from repro.sparql.query_graph import QueryGraph


@pytest.fixture
def cluster():
    dataset = Dataset.from_triples(
        [triple(f"http://e/a{i}", "http://e/p", f"http://e/b{i}") for i in range(5)]
    )
    return Cluster.build(dataset, HashSubjectObject(), cluster_size=2)


def scan_node(index: int, pattern) -> ScanNode:
    return ScanNode(
        bits=1 << index, cardinality=1.0, cost=0.0, pattern_index=index, pattern=pattern
    )


class TestExecutorErrors:
    def test_scan_without_pattern_rejected(self, cluster):
        bogus = ScanNode(bits=1, cardinality=1.0, cost=0.0, pattern_index=0, pattern=None)
        with pytest.raises(ExecutionError):
            Executor(cluster).execute(bogus)

    def test_unknown_node_type_rejected(self, cluster):
        bogus = PlanNode(bits=1, cardinality=1.0, cost=0.0)
        with pytest.raises(ExecutionError):
            Executor(cluster).execute(bogus)

    def test_repartition_without_shared_variable_rejected(self, cluster):
        # two patterns with disjoint variables, forced into one repartition join
        tp_a = TriplePattern(Variable("x"), IRI("http://e/p"), Variable("y"))
        tp_b = TriplePattern(Variable("v"), IRI("http://e/p"), Variable("w"))
        join = JoinNode(
            bits=0b11,
            cardinality=1.0,
            cost=0.0,
            algorithm=JoinAlgorithm.REPARTITION,
            join_variable=None,
            children=(scan_node(0, tp_a), scan_node(1, tp_b)),
        )
        with pytest.raises(ExecutionError):
            Executor(cluster).execute(join)

    def test_repartition_with_missing_variable_rejected(self, cluster):
        tp_a = TriplePattern(Variable("x"), IRI("http://e/p"), Variable("y"))
        tp_b = TriplePattern(Variable("y"), IRI("http://e/p"), Variable("z"))
        join = JoinNode(
            bits=0b11,
            cardinality=1.0,
            cost=0.0,
            algorithm=JoinAlgorithm.REPARTITION,
            join_variable=Variable("nope"),
            children=(scan_node(0, tp_a), scan_node(1, tp_b)),
        )
        with pytest.raises(ExecutionError):
            Executor(cluster).execute(join)

    def test_execute_bare_scan(self, cluster):
        tp = TriplePattern(Variable("s"), IRI("http://e/p"), Variable("o"))
        relation, metrics = Executor(cluster).execute(scan_node(0, tp))
        assert len(relation) == 5
        assert metrics.critical_path_cost == 0.0  # scans are free per Table I


class TestQueryGraph:
    def test_edges_and_neighbors(self):
        q = parse_query(
            """
            SELECT * WHERE {
              ?a <http://e/p> ?b .
              ?b <http://e/q> ?c .
              ?a <http://e/r> ?c .
            }
            """
        )
        qg = QueryGraph(q)
        a, b, c = Variable("a"), Variable("b"), Variable("c")
        assert len(qg.vertices) == 3
        assert len(qg.out_edges(a)) == 2
        assert len(qg.in_edges(c)) == 2
        assert qg.neighbors(b) == {a, c}
        assert len(qg.edges(b)) == 2

    def test_reachable_patterns_follow_direction(self):
        q = parse_query(
            """
            SELECT * WHERE {
              ?a <http://e/p> ?b .
              ?c <http://e/q> ?b .
            }
            """
        )
        qg = QueryGraph(q)
        assert len(qg.reachable_patterns(Variable("a"))) == 1
        assert len(qg.reachable_patterns(Variable("b"))) == 0

    def test_forward_hops_zero_frontier(self):
        q = parse_query("SELECT * WHERE { ?a <http://e/p> ?b . }")
        qg = QueryGraph(q)
        assert qg.patterns_within_forward_hops(Variable("b"), 3) == frozenset()


class TestRelationEdgeCases:
    def test_empty_relation_join(self):
        left = Relation([Variable("x")])
        right = Relation([Variable("x")])
        from repro.engine.relations import hash_join

        assert len(hash_join(left, right)) == 0

    def test_multi_join_single_input(self):
        from repro.engine.relations import multi_join

        r = Relation([Variable("x")], {(IRI("a"),)})
        assert multi_join([r]) is r

    def test_multi_join_empty_rejected(self):
        from repro.engine.relations import multi_join

        with pytest.raises(ValueError):
            multi_join([])

    def test_project_onto_absent_variable(self):
        r = Relation([Variable("x")], {(IRI("a"),)})
        projected = r.project([Variable("zz")])
        assert projected.variables == ()
