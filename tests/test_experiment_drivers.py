"""Smoke tests for the table/figure drivers at tiny scales.

The real runs live in benchmarks/; these keep the drivers importable,
runnable, and structurally correct inside the fast test suite.
"""

import pytest

from repro.experiments import fig6, fig7, fig8, table3, table7


class TestTable3:
    def test_rows_cover_all_queries(self):
        rows = table3.run()
        assert len(rows) == 15
        names = [row[0] for row in rows]
        assert names[0] == "L1" and names[-1] == "L10"

    def test_report_renders(self):
        content = table3.report()
        assert "Table III" in content


class TestTable7:
    def test_tiny_grid(self):
        results = table7.run(
            sizes=(6,), algorithms=("TD-CMD", "TD-CMDP"), timeout_seconds=30
        )
        assert set(results) == {
            ("chain", 6),
            ("cycle", 6),
            ("tree", 6),
            ("dense", 6),
        }
        for per_algorithm in results.values():
            for run in per_algorithm.values():
                assert not run.timed_out
                assert run.plans_considered > 0


class TestFig6:
    def test_tiny_workload(self):
        averages, ratios = fig6.run(
            templates=3,
            instances_per_template=1,
            algorithms=("TD-CMD", "TD-CMDP"),
            timeout_seconds=30,
        )
        assert set(averages) == {"TD-CMD", "TD-CMDP"}
        assert all(r >= 1.0 - 1e-9 for r in ratios["TD-CMDP"])


class TestFig7:
    def test_tiny_sweep(self):
        series = fig7.run(
            sizes=(4, 6),
            algorithms=("TD-CMD", "HGR-TD-CMD"),
            draws=1,
            timeout_seconds=30,
        )
        assert set(series) == {"chain", "cycle", "tree", "dense"}
        for per_algorithm in series.values():
            for sizes_map in per_algorithm.values():
                for value in sizes_map.values():
                    assert value is None or value >= 0


class TestFig8:
    def test_tiny_sweep(self):
        ratios = fig8.run(sizes=(5,), draws=1, timeout_seconds=30)
        for per_algorithm in ratios.values():
            for algorithm, ratio_list in per_algorithm.items():
                for ratio in ratio_list:
                    assert ratio >= 1.0 - 1e-9


class TestCLIExperiments:
    def test_table3_via_cli(self, capsys):
        from repro.__main__ import main

        assert main(["experiments", "table3"]) == 0
        assert "Table III" in capsys.readouterr().out
