"""Tests for the experiment harness and table drivers (smoke-level)."""

import pytest

from repro.core.join_graph import JoinGraph
from repro.experiments.benchmark_queries import (
    QUERY_ORDER,
    benchmark_queries,
    ordered_benchmark_queries,
)
from repro.experiments.harness import (
    ALGORITHMS,
    AlgorithmRun,
    cumulative_frequency,
    run_algorithm,
)
from repro.experiments.tables import render_table
from repro.workloads.generators import chain_query, star_query


class TestHarness:
    def test_run_algorithm_success(self):
        run = run_algorithm("TD-CMD", chain_query(5), timeout_seconds=30)
        assert not run.timed_out
        assert run.cost is not None and run.cost > 0
        assert run.plans_considered > 0
        assert run.time_label.endswith("s")
        assert run.result is not None

    def test_run_algorithm_timeout(self):
        run = run_algorithm("TD-CMD", star_query(16), timeout_seconds=0.01)
        assert run.timed_out
        assert run.cost is None
        assert run.time_label == ">0s"
        assert run.cost_label == "N/A"
        assert run.plans_label == "N/A" or run.plans_label.replace(",", "").isdigit()

    def test_registry_covers_paper_algorithms(self):
        assert {
            "TD-CMD",
            "TD-CMDP",
            "HGR-TD-CMD",
            "TD-Auto",
            "MSC",
            "DP-Bushy",
            "TriAD-DP",
        } == set(ALGORITHMS)

    def test_all_algorithms_run_one_query(self):
        query = chain_query(4)
        for algorithm in ALGORITHMS:
            run = run_algorithm(algorithm, query, timeout_seconds=30)
            assert not run.timed_out, algorithm
            assert run.cost > 0

    def test_cumulative_frequency(self):
        ratios = [1.0, 1.0, 2.5, 9.0]
        assert cumulative_frequency(ratios, (1, 2, 4, 8)) == [0.5, 0.5, 0.75, 0.75]
        assert cumulative_frequency([], (1, 2)) == [0.0, 0.0]


class TestTables:
    def test_render_table_alignment(self):
        content = render_table(
            "Demo", ["a", "bbbb"], [["1", "2"], ["333", "4"]], note="n"
        )
        lines = content.splitlines()
        assert lines[0] == "Demo"
        assert "a    bbbb" in lines[2]
        assert lines[-1] == "n"

    def test_render_table_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            render_table("x", ["a", "b"], [["only-one"]])


class TestBenchmarkQueries:
    def test_all_fifteen_present(self):
        queries = benchmark_queries()
        assert set(queries) == set(QUERY_ORDER)

    def test_statistics_align_with_queries(self):
        for bench in ordered_benchmark_queries():
            assert len(bench.statistics.per_pattern) == len(bench.query)
            for stats in bench.statistics.per_pattern:
                assert stats.cardinality >= 1.0

    def test_order_matches_paper(self):
        assert QUERY_ORDER[0] == "L1" and QUERY_ORDER[-1] == "L10"

    def test_shapes_attached(self):
        for bench in ordered_benchmark_queries():
            assert bench.shape in {"star", "chain", "tree", "dense"}
            # and consistent with the classifier
            assert JoinGraph(bench.query).shape().value == bench.shape
