"""Tests for EXPLAIN ANALYZE (estimated vs measured diagnostics)."""

import pytest

from repro.core import StatisticsCatalog, optimize
from repro.engine import Cluster, evaluate_reference, explain
from repro.engine.explain import OperatorExplain
from repro.partitioning import HashSubjectObject


@pytest.fixture
def executed(toy_dataset, toy_query):
    method = HashSubjectObject()
    statistics = StatisticsCatalog.from_dataset(toy_query, toy_dataset)
    result = optimize(toy_query, statistics=statistics, partitioning=method)
    cluster = Cluster.build(toy_dataset, method, cluster_size=3)
    relation, report = explain(result.plan, cluster, toy_query)
    return result, relation, report


class TestExplain:
    def test_result_is_still_correct(self, executed, toy_dataset, toy_query):
        _, relation, _ = executed
        reference = evaluate_reference(toy_query, toy_dataset.graph)
        assert relation.rows == reference.rows

    def test_one_row_per_join_operator(self, executed):
        result, _, report = executed
        assert len(report.rows) == sum(1 for _ in result.plan.joins())

    def test_plan_costs_reported(self, executed):
        result, _, report = executed
        assert report.estimated_plan_cost == pytest.approx(result.cost)
        assert report.measured_plan_cost > 0

    def test_q_error_at_least_one(self, executed):
        _, _, report = executed
        for row in report.rows:
            assert row.q_error >= 1.0
        assert report.max_q_error >= 1.0

    def test_render_contains_all_operators(self, executed):
        _, _, report = executed
        text = report.render()
        for row in report.rows:
            assert row.operator in text
        assert "max q-error" in text


class TestQErrorMath:
    def test_symmetric(self):
        over = OperatorExplain("x", "local", 2, 100.0, 10, 0.0, 0.0)
        under = OperatorExplain("x", "local", 2, 10.0, 100, 0.0, 0.0)
        assert over.q_error == pytest.approx(under.q_error) == pytest.approx(10.0)

    def test_exact_estimate_is_one(self):
        exact = OperatorExplain("x", "local", 2, 50.0, 50, 0.0, 0.0)
        assert exact.q_error == pytest.approx(1.0)

    def test_zero_actual_clamped(self):
        row = OperatorExplain("x", "local", 2, 5.0, 0, 0.0, 0.0)
        assert row.q_error == pytest.approx(5.0)


class TestCLIExplain:
    def test_run_with_explain(self, capsys, tmp_path):
        from repro.__main__ import main
        from repro.rdf import save_ntriples, triple

        triples = [
            triple(f"http://e/a{i}", "http://e/p", f"http://e/b{i}") for i in range(6)
        ] + [
            triple(f"http://e/b{i}", "http://e/q", f"http://e/c{i}") for i in range(6)
        ]
        data = tmp_path / "d.nt"
        save_ntriples(triples, data)
        query = tmp_path / "q.sparql"
        query.write_text(
            "SELECT * WHERE { ?x <http://e/p> ?y . ?y <http://e/q> ?z . }",
            encoding="utf-8",
        )
        assert main(["run", str(query), "--data", str(data), "--explain"]) == 0
        captured = capsys.readouterr()
        assert "q-err" in captured.err
