"""Fault injection and recovery: the engine survives worker failure.

Covers the injector's determinism, the cluster's liveness/re-routing,
the retry policy's pricing, executor correctness under every fault
model, the zero-rate no-overhead guarantee, and the degenerate-cluster
validation fix.
"""

import random

import pytest

from repro import AbortCause, QueryAborted
from repro.core import StatisticsCatalog, optimize
from repro.engine import (
    ENGINES,
    CircuitBreaker,
    Cluster,
    Executor,
    FailStop,
    FaultInjector,
    FaultKind,
    FaultToleranceError,
    MapReduceSimulator,
    RetryPolicy,
    Straggler,
    Transient,
    evaluate_reference,
)
from repro.partitioning import (
    AdaptiveCluster,
    DynamicPartitioning,
    HashSubjectObject,
    MigrationProposal,
)
from repro.partitioning.adaptive import COLOCATE
from repro.partitioning.base import Partitioning
from repro.rdf import Dataset, IRI, triple
from repro.rdf.terms import Variable
from repro.sparql.ast import BGPQuery, TriplePattern
from repro.workloads import generate_lubm, lubm_query


@pytest.fixture(scope="module")
def lubm():
    dataset = generate_lubm()
    query = lubm_query("L7")
    method = HashSubjectObject()
    statistics = StatisticsCatalog.from_dataset(query, dataset)
    plan = optimize(query, statistics=statistics, partitioning=method).plan
    reference = evaluate_reference(query, dataset.graph)
    return dataset, query, method, plan, reference


def _fresh_cluster(lubm, size=5):
    dataset, _, method, _, _ = lubm
    return Cluster.build(dataset, method, cluster_size=size)


class TestFaultInjector:
    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            FaultInjector(-0.1)
        with pytest.raises(ValueError):
            FaultInjector(1.5)

    def test_zero_rate_is_inactive(self):
        injector = FaultInjector(0.0, seed=1)
        assert not injector.active
        assert injector.draw("op", 0, [0, 1, 2]) is None

    def test_same_seed_same_event_sequence(self):
        def events(seed):
            injector = FaultInjector(0.6, seed=seed)
            drawn = []
            for i in range(50):
                event = injector.draw(f"op{i}", 0, [0, 1, 2, 3])
                if event is not None:
                    drawn.append((event.kind, event.worker, event.slowdown))
            return drawn

        assert events(7) == events(7)
        assert events(7) != events(8)
        assert events(7)  # rate 0.6 over 50 draws must fire at least once

    def test_reset_replays_from_seed(self):
        injector = FaultInjector(0.5, seed=3)
        first = [injector.draw(f"op{i}", 0, [0, 1]) for i in range(20)]
        injector.reset()
        second = [injector.draw(f"op{i}", 0, [0, 1]) for i in range(20)]
        assert [e and (e.kind, e.worker) for e in first] == [
            e and (e.kind, e.worker) for e in second
        ]

    def test_fail_stop_downgraded_on_last_worker(self):
        injector = FaultInjector(1.0, seed=0, models=(FailStop(),))
        for i in range(10):
            event = injector.draw(f"op{i}", 0, [4])
            assert event is not None
            assert event.kind is FaultKind.TRANSIENT

    def test_events_are_recorded_and_stamped(self):
        injector = FaultInjector(1.0, seed=0, models=(Transient(),))
        injector.draw("join-x", 2, [0, 1])
        assert len(injector.events) == 1
        assert injector.events[0].operator == "join-x"
        assert injector.events[0].attempt == 2

    def test_weights_must_match_models(self):
        with pytest.raises(ValueError):
            FaultInjector(0.5, models=(Transient(),), weights=(1.0, 2.0))

    def test_straggler_slowdown_bounds_validated(self):
        with pytest.raises(ValueError):
            Straggler(min_slowdown=0.5)
        with pytest.raises(ValueError):
            Straggler(min_slowdown=4.0, max_slowdown=2.0)


class TestRetryPolicy:
    def test_exponential_backoff_sequence(self):
        policy = RetryPolicy(max_retries=4, backoff_base=10.0, backoff_multiplier=2.0)
        assert [policy.backoff_cost(k) for k in (1, 2, 3)] == [10.0, 20.0, 40.0]
        assert policy.total_backoff(3) == 70.0

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_base=-1.0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_multiplier=0.5)

    def test_expected_attempts_truncated_geometric(self):
        policy = RetryPolicy(max_retries=2)
        assert policy.expected_attempts(0.0) == 1.0
        # 1 + p + p² with p = 0.5
        assert policy.expected_attempts(0.5) == pytest.approx(1.75)

    def test_expected_backoff(self):
        policy = RetryPolicy(max_retries=2, backoff_base=10.0, backoff_multiplier=2.0)
        # p·b + p²·(b·m) with p = 0.5
        assert policy.expected_backoff(0.5) == pytest.approx(0.5 * 10 + 0.25 * 20)
        assert policy.expected_backoff(0.0) == 0.0


class TestClusterLiveness:
    def _cluster(self, size=4):
        dataset = Dataset.from_triples(
            [triple(f"http://e/a{i}", "http://e/p", f"http://e/b{i}") for i in range(20)]
        )
        return Cluster.build(dataset, HashSubjectObject(), cluster_size=size)

    def test_degenerate_cluster_size_rejected(self):
        dataset = Dataset.from_triples([triple("http://e/a", "http://e/p", "http://e/b")])
        with pytest.raises(ValueError, match="cluster_size"):
            Cluster.build(dataset, HashSubjectObject(), cluster_size=0)
        with pytest.raises(ValueError, match="cluster_size"):
            Cluster.build(dataset, HashSubjectObject(), cluster_size=-3)

    def test_partitioning_without_workers_rejected(self):
        empty = Partitioning(method_name="broken", node_graphs=[])
        with pytest.raises(ValueError, match="no node graphs"):
            Cluster(empty)

    def test_fail_worker_preserves_data(self):
        cluster = self._cluster()
        stored_before = set()
        for graph in cluster.worker_graphs():
            stored_before.update(graph)
        target, moved = cluster.fail_worker(1)
        assert not cluster.is_live(1)
        assert cluster.live_size == 3
        assert cluster.failed_workers == [1]
        assert target in cluster.live_workers
        assert moved == len(cluster.partitioning.node_graphs[1])
        # every stored triple survives in the degraded layout
        stored_after = set()
        for graph in cluster.worker_graphs():
            stored_after.update(graph)
        assert stored_after == stored_before
        assert len(cluster.worker_graph(1)) == 0

    def test_replica_is_never_mutated(self):
        cluster = self._cluster()
        originals = [len(g) for g in cluster.partitioning.node_graphs]
        cluster.fail_worker(0)
        cluster.fail_worker(2)
        assert [len(g) for g in cluster.partitioning.node_graphs] == originals
        cluster.heal()
        assert cluster.worker_graphs() is cluster.workers
        assert [len(g) for g in cluster.worker_graphs()] == originals

    def test_route_avoids_dead_workers(self):
        cluster = self._cluster()
        cluster.fail_worker(0)
        cluster.fail_worker(1)
        for i in range(50):
            term = IRI(f"http://e/v{i}")
            assert cluster.route(term) in cluster.live_workers

    def test_route_unchanged_while_healthy(self):
        from repro.partitioning.base import hash_term

        cluster = self._cluster()
        for i in range(20):
            term = IRI(f"http://e/v{i}")
            assert cluster.route(term) == hash_term(term, cluster.size)

    def test_cannot_fail_last_worker_or_dead_worker(self):
        cluster = self._cluster(size=2)
        cluster.fail_worker(0)
        with pytest.raises(ValueError, match="already dead"):
            cluster.fail_worker(0)
        with pytest.raises(ValueError, match="last live"):
            cluster.fail_worker(1)
        with pytest.raises(ValueError, match="no such worker"):
            cluster.fail_worker(9)

    def test_cascading_failures_chain_reroutes(self):
        cluster = self._cluster()
        stored = set()
        for graph in cluster.worker_graphs():
            stored.update(graph)
        cluster.fail_worker(1)
        cluster.fail_worker(2)  # absorbs worker 1's re-routed partition, then dies
        assert cluster.live_workers == [0, 3]
        survivors = set()
        for graph in cluster.worker_graphs():
            survivors.update(graph)
        assert survivors == stored


class TestExecutorUnderFaults:
    def test_zero_rate_injector_is_byte_identical(self, lubm):
        _, query, _, plan, _ = lubm
        baseline_rel, baseline = Executor(_fresh_cluster(lubm)).execute(plan, query)
        injector = FaultInjector(0.0, seed=9)
        relation, metrics = Executor(
            _fresh_cluster(lubm), fault_injector=injector
        ).execute(plan, query)
        assert relation.rows == baseline_rel.rows
        assert metrics.critical_path_cost == baseline.critical_path_cost
        assert metrics.summary().keys() == baseline.summary().keys()
        assert not metrics.fault_injection_enabled
        assert metrics.total_recovery_cost == 0.0

    @pytest.mark.parametrize(
        "models",
        [(FailStop(),), (Transient(),), (Straggler(),), None],
        ids=["fail-stop", "transient", "straggler", "mixed"],
    )
    def test_recovered_execution_matches_reference(self, lubm, models):
        _, query, _, plan, reference = lubm
        for seed in range(4):
            cluster = _fresh_cluster(lubm)
            injector = FaultInjector(0.4, seed=seed, models=models)
            executor = Executor(
                cluster,
                fault_injector=injector,
                retry_policy=RetryPolicy(max_retries=64),
            )
            relation, metrics = executor.execute(plan, query)
            assert relation.rows == reference.rows
            assert metrics.fault_injection_enabled

    def test_metrics_reproducible_for_fixed_seed(self, lubm):
        _, query, _, plan, _ = lubm

        def run():
            executor = Executor(
                _fresh_cluster(lubm),
                fault_injector=FaultInjector(0.35, seed=11),
                retry_policy=RetryPolicy(max_retries=64),
            )
            _, metrics = executor.execute(plan, query)
            return (
                metrics.total_faults_injected,
                metrics.total_retries,
                metrics.workers_failed,
                metrics.total_recovery_cost,
                metrics.critical_path_cost,
            )

        first, second = run(), run()
        assert first == second
        assert first[0] > 0  # the seed actually injects something

    def test_nonzero_recovery_counters_under_faults(self, lubm):
        _, query, _, plan, _ = lubm
        executor = Executor(
            _fresh_cluster(lubm),
            fault_injector=FaultInjector(0.5, seed=2),
            retry_policy=RetryPolicy(max_retries=64),
        )
        _, metrics = executor.execute(plan, query)
        assert metrics.total_faults_injected > 0
        assert metrics.total_recovery_cost > 0.0
        summary = metrics.summary()
        assert summary["recovery_cost"] == pytest.approx(metrics.total_recovery_cost)
        assert summary["retries"] == metrics.total_retries
        # recovery is priced into the critical path
        no_fault_rel, no_fault = Executor(_fresh_cluster(lubm)).execute(plan, query)
        assert metrics.critical_path_cost > no_fault.critical_path_cost

    def test_same_injector_replays_across_executions(self, lubm):
        _, query, _, plan, reference = lubm
        injector = FaultInjector(0.35, seed=4)
        costs = []
        for _ in range(2):
            executor = Executor(
                _fresh_cluster(lubm),
                fault_injector=injector,
                retry_policy=RetryPolicy(max_retries=64),
            )
            relation, metrics = executor.execute(plan, query)
            assert relation.rows == reference.rows
            costs.append(metrics.critical_path_cost)
        assert costs[0] == costs[1]

    def test_retry_exhaustion_raises(self, lubm):
        _, query, _, plan, _ = lubm
        executor = Executor(
            _fresh_cluster(lubm),
            fault_injector=FaultInjector(1.0, seed=0, models=(Transient(),)),
            retry_policy=RetryPolicy(max_retries=2),
        )
        with pytest.raises(FaultToleranceError, match="retry budget"):
            executor.execute(plan, query)

    def test_straggler_only_never_retries(self, lubm):
        _, query, _, plan, reference = lubm
        executor = Executor(
            _fresh_cluster(lubm),
            fault_injector=FaultInjector(0.6, seed=1, models=(Straggler(),)),
        )
        relation, metrics = executor.execute(plan, query)
        assert relation.rows == reference.rows
        assert metrics.total_retries == 0
        assert metrics.workers_failed == 0
        assert metrics.total_faults_injected > 0
        assert metrics.total_recovery_cost > 0.0

    def test_cluster_stays_degraded_and_heals(self, lubm):
        _, query, _, plan, reference = lubm
        cluster = _fresh_cluster(lubm)
        executor = Executor(
            cluster,
            fault_injector=FaultInjector(0.5, seed=0, models=(FailStop(),)),
            retry_policy=RetryPolicy(max_retries=64),
        )
        _, metrics = executor.execute(plan, query)
        assert metrics.workers_failed == len(cluster.failed_workers) > 0
        cluster.heal()
        assert cluster.live_size == cluster.size
        relation, healed = Executor(cluster).execute(plan, query)
        assert relation.rows == reference.rows
        assert healed.total_recovery_cost == 0.0


class TestSimulatorFaultPricing:
    def _plan(self):
        from repro.core.optimizer import make_builder
        from repro.core.plans import JoinAlgorithm
        from repro.workloads.generators import chain_query

        builder = make_builder(chain_query(4), seed=1)
        plan = builder.scan(0)
        for i in range(1, 4):
            plan = builder.join(JoinAlgorithm.REPARTITION, [plan, builder.scan(i)])
        return builder, plan

    def test_zero_rate_matches_historical_makespan(self):
        builder, plan = self._plan()
        base = MapReduceSimulator(builder.parameters).simulate_plan(plan)[1]
        faulty = MapReduceSimulator(builder.parameters, fault_rate=0.0).simulate_plan(
            plan
        )[1]
        assert faulty == base

    def test_fault_rate_inflates_makespan_monotonically(self):
        builder, plan = self._plan()
        makespans = [
            MapReduceSimulator(builder.parameters, fault_rate=rate).simulate_plan(plan)[1]
            for rate in (0.0, 0.1, 0.3, 0.5)
        ]
        assert makespans == sorted(makespans)
        assert makespans[-1] > makespans[0]

    def test_invalid_fault_rate_rejected(self):
        with pytest.raises(ValueError):
            MapReduceSimulator(fault_rate=1.0)
        with pytest.raises(ValueError):
            MapReduceSimulator(fault_rate=-0.2)


class TestCollectGuard:
    def test_collect_empty_distributed_relation_rejected(self, lubm):
        from repro.engine import ExecutionError

        executor = Executor(_fresh_cluster(lubm))
        with pytest.raises(ExecutionError, match="no workers"):
            executor._collect([])


class TestDoubleFailStop:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_two_workers_die_in_one_query(self, lubm, engine):
        _, query, _, plan, reference = lubm
        seen_double = False
        for seed in range(6):
            cluster = _fresh_cluster(lubm)
            executor = Executor(
                cluster,
                fault_injector=FaultInjector(
                    0.7, seed=seed, models=(FailStop(),)
                ),
                retry_policy=RetryPolicy(max_retries=64),
                engine=engine,
            )
            relation, metrics = executor.execute(plan, query)
            assert relation.rows == reference.rows
            if metrics.workers_failed >= 2:
                seen_double = True
        assert seen_double  # high-rate fail-stops must cascade somewhere

    @pytest.mark.parametrize("engine", ENGINES)
    def test_replica_merge_target_dies_too(self, lubm, engine):
        _, query, _, plan, reference = lubm
        cluster = _fresh_cluster(lubm)
        # the worker that absorbed the first victim's partition dies as
        # well, so its merged slice must chain-reroute a second time
        target, _ = cluster.fail_worker(1)
        cluster.fail_worker(target)
        relation, _ = Executor(cluster, engine=engine).execute(plan, query)
        assert relation.rows == reference.rows
        assert cluster.live_size == 3


class TestAbortTaxonomy:
    def test_fault_tolerance_error_is_structured_abort(self, lubm):
        _, query, _, plan, _ = lubm
        executor = Executor(
            _fresh_cluster(lubm),
            fault_injector=FaultInjector(1.0, seed=0, models=(Transient(),)),
            retry_policy=RetryPolicy(max_retries=1),
        )
        with pytest.raises(FaultToleranceError) as exc:
            executor.execute(plan, query)
        abort = exc.value
        assert isinstance(abort, QueryAborted)
        assert abort.cause is AbortCause.RETRY_EXHAUSTED
        assert abort.phase == "execute"
        assert abort.operator
        assert abort.attempts  # the per-attempt fault history rode along
        assert all(event.operator == abort.operator for event in abort.attempts)
        assert abort.partial_metrics is not None
        assert abort.partial_metrics.abort_cause == "retry-exhausted"
        report = abort.describe()
        assert abort.operator in report
        assert "attempt history" in report


class TestCircuitBreaker:
    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(threshold=4, window=2)

    def test_trips_after_threshold_in_window(self):
        breaker = CircuitBreaker(threshold=3, window=8)
        assert not breaker.record_fault(2)
        assert not breaker.record_fault(2)
        assert breaker.state(2) == "closed"
        assert breaker.record_fault(2)
        assert breaker.state(2) == "open"
        assert breaker.open_workers == [2]
        assert breaker.trips == 1
        # an open breaker swallows further faults without re-tripping
        assert not breaker.record_fault(2)
        assert breaker.trips == 1

    def test_window_forgets_old_faults(self):
        breaker = CircuitBreaker(threshold=3, window=3)
        assert not breaker.record_fault(1)
        assert not breaker.record_fault(1)
        assert not breaker.record_fault(2)  # fills the window
        # the oldest fault of worker 1 was evicted: still only two in view
        assert not breaker.record_fault(1)
        assert breaker.state(1) == "closed"

    def test_reset_closes_but_keeps_trip_count(self):
        breaker = CircuitBreaker(threshold=1, window=1)
        assert breaker.record_fault(3)
        breaker.reset()
        assert breaker.open_workers == []
        assert breaker.state(3) == "closed"
        assert breaker.trips == 1  # cumulative across resets

    def test_quarantine_drains_flaky_worker_and_heals(self, lubm):
        _, query, _, plan, reference = lubm
        cluster = _fresh_cluster(lubm)
        breaker = CircuitBreaker(threshold=1, window=4)
        executor = Executor(
            cluster,
            fault_injector=FaultInjector(0.6, seed=1, models=(Transient(),)),
            retry_policy=RetryPolicy(max_retries=64),
            circuit_breaker=breaker,
        )
        relation, metrics = executor.execute(plan, query)
        assert relation.rows == reference.rows
        assert breaker.trips >= 1
        assert breaker.open_workers  # the flaky worker was quarantined
        assert metrics.workers_failed >= 1
        cluster.heal()  # the heal listener closes the breaker again
        assert breaker.open_workers == []
        assert breaker.trips >= 1


class TestHotReplicaSurvival:
    """Hot-query placements — static (DynamicPartitioning) or migrated
    online (AdaptiveCluster.apply) — are part of a worker's served
    graph, so fail-stop re-routing must carry them to the re-route
    target exactly like base partitions."""

    def test_dynamic_hot_layout_survives_worker_death(self, lubm):
        dataset, query, _, _, reference = lubm
        method = DynamicPartitioning(HashSubjectObject(), [query])
        statistics = StatisticsCatalog.from_dataset(query, dataset)
        plan = optimize(query, statistics=statistics, partitioning=method).plan
        for victim in range(3):
            cluster = Cluster.build(dataset, method, cluster_size=3)
            _, healthy = Executor(cluster).execute(plan, query)
            assert healthy.total_tuples_shipped == 0  # co-located: all local
            cluster.fail_worker(victim)
            relation, _ = Executor(cluster).execute(plan, query)
            assert relation.rows == reference.rows

    def test_adaptive_placements_survive_worker_death(self, lubm):
        dataset, query, method, _, reference = lubm
        cluster = AdaptiveCluster.build(dataset, method, cluster_size=3)
        report = cluster.apply(
            [
                MigrationProposal(
                    kind=COLOCATE, key="hot-L7", heat=1.0, query=query
                )
            ],
            replication_budget=1.0,
        )
        assert report.changed
        statistics = StatisticsCatalog.from_dataset(query, dataset)
        plan = optimize(
            query, statistics=statistics, partitioning=cluster.adapted_method()
        ).plan
        _, adapted = Executor(cluster).execute(plan, query)
        assert adapted.total_tuples_shipped == 0

        victim = 0
        placed = set(cluster._adaptive_layout.get(victim, []))
        target, _ = cluster.fail_worker(victim)
        relation, _ = Executor(cluster).execute(plan, query)
        assert relation.rows == reference.rows
        # the victim's migrated fragments now live on the re-route target
        assert placed <= set(cluster.worker_graph(target))
