"""Qualitative plan-shape checks inspired by Figure 3 of the paper.

Figure 3 contrasts the typical plans the optimizers produce for the
running example: TriAD's binary bushy tree, MSC's flat two-level plan,
and DP-Bushy's plan with one maximal multi-way join.  Exact plans
depend on statistics; these tests pin the *structural* signatures.
"""

import pytest

from repro.baselines import DPBushyOptimizer, MSCOptimizer, TriADOptimizer
from repro.core import LocalQueryIndex, TopDownEnumerator
from repro.core.optimizer import make_builder
from repro.core.plans import JoinAlgorithm
from repro.partitioning import HashSubjectObject
from repro.workloads.generators import star_query


class TestTriADShape:
    def test_all_joins_binary(self, fig1_query):
        builder = make_builder(fig1_query, seed=42)
        result = TriADOptimizer(builder.join_graph, builder).optimize()
        for join in result.plan.joins():
            assert join.arity == 2


class TestMSCShape:
    def test_flat_plan_few_levels(self, fig1_query):
        """MSC plans stay shallow (Fig. 3b shows 2 levels; minimum covers
        over partial cliques can add a couple) — never a left-deep chain."""
        builder = make_builder(fig1_query, seed=42)
        result = MSCOptimizer(
            builder.join_graph, builder, timeout_seconds=60
        ).optimize()
        assert result.plan.depth() <= 4
        assert result.plan.depth() < len(fig1_query) - 1

    def test_star_is_single_level(self):
        builder = make_builder(star_query(7), seed=1)
        result = MSCOptimizer(builder.join_graph, builder).optimize()
        assert result.plan.depth() == 1
        (join,) = result.plan.joins()
        assert join.arity == 7


class TestDPBushyShape:
    def test_multiway_join_used_on_star(self):
        """On a star with uniform stats the flat k-way repartition join
        beats cascades of binary repartition joins, and DP-Bushy's
        'maximal multiway' candidate is exactly that plan."""
        from repro.core import StatisticsCatalog
        from repro.core.cardinality import CardinalityEstimator
        from repro.core.cost import PlanBuilder
        from repro.core.join_graph import JoinGraph

        query = star_query(6)
        join_graph = JoinGraph(query)
        catalog = StatisticsCatalog.uniform(query, cardinality=1000.0)
        builder = PlanBuilder(join_graph, CardinalityEstimator(join_graph, catalog))
        result = DPBushyOptimizer(join_graph, builder).optimize()
        arities = sorted(j.arity for j in result.plan.joins())
        assert arities[-1] >= 3  # some multiway join survived


class TestOperatorMix:
    def test_tdcmd_uses_multiple_algorithms(self, fig1_query):
        """On the dense example the optimal plan mixes broadcast and
        repartition joins (Fig. 3 uses both labels)."""
        builder = make_builder(fig1_query, seed=42)
        index = LocalQueryIndex(builder.join_graph, HashSubjectObject())
        result = TopDownEnumerator(builder.join_graph, builder, index).optimize()
        algorithms = {j.algorithm for j in result.plan.joins()}
        assert len(algorithms) >= 2
