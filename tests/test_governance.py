"""Query lifecycle governance: budgets, deadlines, cancellation, anytime.

Unit coverage for the :mod:`repro.core.governance` vocabulary (clocks,
deadlines, tokens, budgets, the abort taxonomy), the anytime
degradation ladder across every algorithm (driven by deterministic
stepping clocks — no sleeps), the ``timeout_seconds`` deprecation
shim, and the zero-cost-off guarantee: an ungoverned query behaves
byte-identically to the pre-governance code in both phases.
"""

import warnings

import pytest

from repro import (
    AbortCause,
    CancellationToken,
    Deadline,
    ManualClock,
    OptimizeOptions,
    Optimizer,
    QueryAborted,
    QueryBudget,
    SteppingClock,
    optimize,
)
from repro.analysis import VerificationContext, verify_result
from repro.core import (
    OptimizationTimeout,
    PlanCache,
    StatisticsCatalog,
    plan_signature,
)
from repro.core.governance import MonotonicClock
from repro.engine import Cluster, Executor, FaultInjector, RetryPolicy
from repro.partitioning import HashSubjectObject
from repro.workloads import generate_lubm, lubm_query

ALGORITHMS = ("td-cmd", "td-cmdp", "hgr-td-cmd", "td-auto")


@pytest.fixture(scope="module")
def lubm():
    dataset = generate_lubm()
    query = lubm_query("L7")
    method = HashSubjectObject()
    statistics = StatisticsCatalog.from_dataset(query, dataset)
    return dataset, query, method, statistics


def _session(statistics, method, **overrides):
    return Optimizer(
        OptimizeOptions(statistics=statistics, partitioning=method, **overrides)
    )


class TestClocks:
    def test_monotonic_clock_moves_forward(self):
        clock = MonotonicClock()
        assert clock.now() <= clock.now()

    def test_manual_clock_is_inert(self):
        clock = ManualClock(start=5.0)
        assert clock.now() == 5.0
        assert clock.now() == 5.0
        clock.advance(2.5)
        assert clock.now() == 7.5

    def test_manual_clock_rejects_backwards(self):
        with pytest.raises(ValueError):
            ManualClock().advance(-1.0)

    def test_stepping_clock_advances_per_read(self):
        clock = SteppingClock(start=0.0, step=2.0)
        assert [clock.now() for _ in range(3)] == [0.0, 2.0, 4.0]
        assert clock.calls == 3

    def test_stepping_clock_rejects_negative_step(self):
        with pytest.raises(ValueError):
            SteppingClock(step=-0.1)


class TestDeadline:
    def test_after_rejects_negative(self):
        with pytest.raises(ValueError):
            Deadline.after(-1.0)

    def test_expiry_on_manual_clock(self):
        clock = ManualClock()
        deadline = Deadline.after(10.0, clock)
        assert not deadline.expired
        assert deadline.remaining() == 10.0
        clock.advance(10.0)
        assert not deadline.expired  # boundary is inclusive
        clock.advance(0.5)
        assert deadline.expired
        assert deadline.remaining() == 0.0

    def test_seconds_keeps_requested_allowance(self):
        assert Deadline.after(3.5, ManualClock()).seconds == 3.5


class TestCancellationToken:
    def test_first_cancel_wins(self):
        token = CancellationToken()
        assert not token.cancelled
        token.cancel("user hit ^C")
        token.cancel("later reason")
        assert token.cancelled
        assert token.reason == "user hit ^C"

    def test_repr_states_lifecycle(self):
        token = CancellationToken()
        assert "active" in repr(token)
        token.cancel("shed load")
        assert "shed load" in repr(token)


class TestQueryBudget:
    def test_negative_limits_rejected(self):
        with pytest.raises(ValueError):
            QueryBudget(row_budget=-1)
        with pytest.raises(ValueError):
            QueryBudget(retry_budget=-1)

    def test_unlimited_budget_never_raises(self):
        budget = QueryBudget()
        budget.check_cancelled(phase="optimize")
        budget.check_deadline(phase="execute")
        budget.charge_rows(10**9)
        budget.charge_retry()
        assert not budget.deadline_expired()

    def test_row_budget_breach(self):
        budget = QueryBudget(row_budget=100, query_id="q1")
        budget.charge_rows(60, operator="scan[0]")
        with pytest.raises(QueryAborted) as exc:
            budget.charge_rows(41, operator="join[root]")
        abort = exc.value
        assert abort.cause is AbortCause.ROW_BUDGET
        assert abort.query_id == "q1"
        assert abort.phase == "execute"
        assert abort.operator == "join[root]"
        assert budget.rows_charged == 101

    def test_retry_budget_breach(self):
        budget = QueryBudget(retry_budget=2)
        budget.charge_retry()
        budget.charge_retry()
        with pytest.raises(QueryAborted) as exc:
            budget.charge_retry(operator="scan[1]")
        assert exc.value.cause is AbortCause.RETRY_EXHAUSTED

    def test_deadline_breach(self):
        clock = ManualClock()
        budget = QueryBudget(deadline=Deadline.after(1.0, clock))
        budget.check_deadline(phase="optimize")
        clock.advance(2.0)
        assert budget.deadline_expired()
        with pytest.raises(QueryAborted) as exc:
            budget.check_deadline(phase="optimize")
        assert exc.value.cause is AbortCause.DEADLINE
        assert "1s" in str(exc.value)

    def test_cancellation_breach(self):
        token = CancellationToken()
        budget = QueryBudget(cancellation=token)
        budget.check_cancelled(phase="optimize")
        token.cancel("session torn down")
        with pytest.raises(QueryAborted) as exc:
            budget.check_cancelled(phase="optimize")
        assert exc.value.cause is AbortCause.CANCELLED
        assert "session torn down" in str(exc.value)

    def test_repr_lists_configured_limits(self):
        assert repr(QueryBudget()) == "QueryBudget(unlimited)"
        budget = QueryBudget(
            deadline=Deadline.after(2.0, ManualClock()),
            row_budget=5,
            retry_budget=3,
            anytime=True,
        )
        text = repr(budget)
        for fragment in ("deadline=2s", "rows<=5", "retries<=3", "anytime"):
            assert fragment in text


class TestQueryAbortedReport:
    def test_describe_carries_structured_context(self):
        abort = QueryAborted(
            "row budget of 10 exceeded",
            cause=AbortCause.ROW_BUDGET,
            query_id="L7",
            phase="execute",
            operator="join[root]",
            trace=("execute", "operator"),
        )
        report = abort.describe()
        assert "query aborted: row budget of 10 exceeded" in report
        assert "cause: row-budget" in report
        assert "query: L7" in report
        assert "phase: execute" in report
        assert "operator: join[root]" in report
        assert "execute > operator" in report

    def test_describe_omits_empty_fields(self):
        report = QueryAborted("cancelled", cause=AbortCause.CANCELLED).describe()
        assert "query:" not in report
        assert "operator:" not in report
        assert "attempt history" not in report


class TestAnytimeDegradation:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_zero_allowance_degrades_to_greedy(self, lubm, algorithm):
        _, query, method, statistics = lubm
        budget = QueryBudget(
            deadline=Deadline.after(0.0, SteppingClock(step=1.0)), anytime=True
        )
        session = _session(statistics, method, algorithm=algorithm)
        result = session.optimize(query, budget=budget)
        assert result.stats.degraded
        assert result.algorithm.endswith("[anytime-greedy]")
        assert "greedy fallback" in result.stats.degradation_reason
        report = verify_result(
            result,
            VerificationContext.for_query(
                query, statistics=statistics, partitioning=method
            ),
        )
        assert report.ok, report.render()

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_late_expiry_returns_best_complete_plan(self, lubm, algorithm):
        _, query, method, statistics = lubm
        # calibrate: run to completion on a stepping clock to learn how
        # many deadline checks the search performs, then rerun with an
        # allowance one tick short — expiry fires at the very last
        # check, when complete root candidates must exist
        probe = SteppingClock(step=1.0)
        full = _session(statistics, method, algorithm=algorithm).optimize(
            query,
            budget=QueryBudget(
                deadline=Deadline.after(10.0**9, probe), anytime=True
            ),
        )
        assert not full.stats.degraded
        checks = probe.calls
        assert checks > 2  # the search must actually poll the deadline
        result = _session(statistics, method, algorithm=algorithm).optimize(
            query,
            budget=QueryBudget(
                deadline=Deadline.after(
                    float(checks - 2), SteppingClock(step=1.0)
                ),
                anytime=True,
            ),
        )
        assert result.stats.degraded
        assert result.algorithm.endswith("[anytime]")
        assert result.stats.summary()["degraded"] == 1.0
        if algorithm in ("td-cmd", "td-cmdp"):
            # exact searches: a mid-search candidate can never beat the
            # optimum (HGR/auto re-cost expanded plans, so no such bound)
            assert result.cost >= full.cost
        report = verify_result(
            result,
            VerificationContext.for_query(
                query, statistics=statistics, partitioning=method
            ),
        )
        assert report.ok, report.render()

    def test_without_anytime_deadline_still_raises_timeout(self, lubm):
        _, query, method, statistics = lubm
        budget = QueryBudget(
            deadline=Deadline.after(0.0, SteppingClock(step=1.0))
        )
        with pytest.raises(OptimizationTimeout):
            _session(statistics, method, algorithm="td-cmd").optimize(
                query, budget=budget
            )

    def test_cancellation_aborts_even_in_anytime_mode(self, lubm):
        _, query, method, statistics = lubm
        token = CancellationToken()
        token.cancel("shutdown")
        budget = QueryBudget(cancellation=token, anytime=True)
        with pytest.raises(QueryAborted) as exc:
            _session(statistics, method, algorithm="td-cmdp").optimize(
                query, budget=budget
            )
        assert exc.value.cause is AbortCause.CANCELLED
        assert exc.value.phase == "optimize"

    def test_degraded_plans_are_not_cached(self, lubm):
        _, query, method, statistics = lubm
        cache = PlanCache()
        session = _session(
            statistics, method, algorithm="td-cmd", plan_cache=cache
        )
        degraded = session.optimize(
            query,
            budget=QueryBudget(
                deadline=Deadline.after(0.0, SteppingClock(step=1.0)),
                anytime=True,
            ),
        )
        assert degraded.stats.degraded
        assert len(cache) == 0
        complete = session.optimize(query)
        assert not complete.stats.degraded
        assert len(cache) == 1


class TestBudgetFor:
    def test_ungoverned_options_yield_no_budget(self, lubm):
        _, query, method, statistics = lubm
        session = _session(statistics, method)
        assert not session.options.governed
        assert session.budget_for(query) is None

    def test_governed_options_build_fresh_budgets(self, lubm):
        _, query, method, statistics = lubm
        token = CancellationToken()
        session = _session(
            statistics,
            method,
            deadline_seconds=30.0,
            row_budget=1000,
            retry_budget=8,
            cancellation=token,
            anytime=True,
        )
        assert session.options.governed
        first = session.budget_for(query)
        second = session.budget_for(query)
        assert first is not second  # fresh counters per query
        assert first.deadline is not None and first.deadline.seconds == 30.0
        assert first.row_budget == 1000
        assert first.retry_budget == 8
        assert first.cancellation is token  # token is session-wide
        assert first.anytime
        assert first.query_id == "L7"


class TestTimeoutDeprecationShim:
    def test_warns_once_per_process_and_folds(self, monkeypatch):
        from repro.core import session as session_module

        monkeypatch.setattr(session_module, "_timeout_shim_warned", False)
        with pytest.warns(DeprecationWarning, match="deadline_seconds"):
            options = OptimizeOptions(timeout_seconds=12.0)
        assert options.deadline_seconds == 12.0
        assert options.governed
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            OptimizeOptions(timeout_seconds=12.0)
        assert not [w for w in caught if w.category is DeprecationWarning]

    def test_explicit_deadline_wins_over_alias(self, monkeypatch):
        from repro.core import session as session_module

        monkeypatch.setattr(session_module, "_timeout_shim_warned", True)
        options = OptimizeOptions(timeout_seconds=12.0, deadline_seconds=3.0)
        assert options.deadline_seconds == 3.0

    def test_legacy_facade_still_accepts_timeout(self, lubm):
        _, query, method, statistics = lubm
        result = optimize(
            query,
            statistics=statistics,
            partitioning=method,
            timeout_seconds=3600.0,
        )
        assert not result.stats.degraded

    def test_facade_timeout_warns_with_removal_version(self, lubm, monkeypatch):
        from repro.core import optimizer as optimizer_module
        from repro.core import session as session_module

        monkeypatch.setattr(optimizer_module, "_timeout_warned", False)
        monkeypatch.setattr(session_module, "_timeout_shim_warned", True)
        _, query, method, statistics = lubm
        with pytest.warns(DeprecationWarning, match=r"removed in 2\.0"):
            optimize(
                query,
                statistics=statistics,
                partitioning=method,
                timeout_seconds=3600.0,
            )

    def test_session_alias_warning_names_removal_version(self, monkeypatch):
        from repro.core import session as session_module

        monkeypatch.setattr(session_module, "_timeout_shim_warned", False)
        with pytest.warns(DeprecationWarning, match=r"removed in 2\.0"):
            OptimizeOptions(timeout_seconds=12.0)


class TestZeroCostOff:
    def test_optimizer_identical_with_generous_budget(self, lubm):
        _, query, method, statistics = lubm
        for algorithm in ALGORITHMS:
            plain = _session(statistics, method, algorithm=algorithm).optimize(
                query
            )
            governed = _session(
                statistics,
                method,
                algorithm=algorithm,
                deadline_seconds=3600.0,
                row_budget=10**9,
                retry_budget=10**6,
                anytime=True,
            ).optimize(query)
            assert plan_signature(governed.plan) == plan_signature(plain.plan)
            assert governed.cost == plain.cost
            assert governed.algorithm == plain.algorithm
            assert governed.stats.summary() == plain.stats.summary()

    def test_executor_identical_with_generous_budget(self, lubm):
        dataset, query, method, statistics = lubm
        plan = _session(statistics, method).optimize(query).plan
        baseline_rel, baseline = Executor(
            Cluster.build(dataset, method, cluster_size=4)
        ).execute(plan, query)
        budget = QueryBudget(
            deadline=Deadline.after(3600.0),
            row_budget=10**9,
            retry_budget=10**6,
        )
        relation, metrics = Executor(
            Cluster.build(dataset, method, cluster_size=4)
        ).execute(plan, query, budget=budget)
        assert relation.rows == baseline_rel.rows
        assert metrics.critical_path_cost == baseline.critical_path_cost
        assert metrics.summary().keys() == baseline.summary().keys()
        assert "abort_cause" not in metrics.summary()


class TestExecutionGovernance:
    def test_row_budget_abort_carries_partial_metrics(self, lubm):
        dataset, query, method, statistics = lubm
        plan = _session(statistics, method).optimize(query).plan
        executor = Executor(Cluster.build(dataset, method, cluster_size=4))
        budget = QueryBudget(row_budget=1, query_id="L7")
        with pytest.raises(QueryAborted) as exc:
            executor.execute(plan, query, budget=budget)
        abort = exc.value
        assert abort.cause is AbortCause.ROW_BUDGET
        assert abort.phase == "execute"
        assert abort.operator.startswith("scan")
        assert abort.query_id == "L7"
        assert abort.partial_metrics is not None
        assert abort.partial_metrics.abort_cause == "row-budget"
        assert len(abort.partial_metrics.operators) >= 1
        assert "partial metrics" in abort.describe()

    def test_deadline_abort_mid_execution(self, lubm):
        dataset, query, method, statistics = lubm
        plan = _session(statistics, method).optimize(query).plan
        executor = Executor(Cluster.build(dataset, method, cluster_size=4))
        budget = QueryBudget(
            deadline=Deadline.after(0.0, SteppingClock(step=1.0)),
            query_id="L7",
        )
        with pytest.raises(QueryAborted) as exc:
            executor.execute(plan, query, budget=budget)
        abort = exc.value
        assert abort.cause is AbortCause.DEADLINE
        assert abort.phase == "execute"
        assert abort.partial_metrics is not None
        assert abort.partial_metrics.abort_cause == "deadline"

    def test_query_retry_budget_abort_under_faults(self, lubm):
        dataset, query, method, statistics = lubm
        plan = _session(statistics, method).optimize(query).plan
        executor = Executor(
            Cluster.build(dataset, method, cluster_size=4),
            fault_injector=FaultInjector(1.0, seed=3),
            retry_policy=RetryPolicy(max_retries=64),
        )
        budget = QueryBudget(retry_budget=0, query_id="L7")
        with pytest.raises(QueryAborted) as exc:
            executor.execute(plan, query, budget=budget)
        abort = exc.value
        assert abort.cause is AbortCause.RETRY_EXHAUSTED
        assert abort.attempts  # the fault history rode along
        assert abort.partial_metrics is not None
        assert "attempt history" in abort.describe()

    def test_cancellation_aborts_execution(self, lubm):
        dataset, query, method, statistics = lubm
        plan = _session(statistics, method).optimize(query).plan
        executor = Executor(Cluster.build(dataset, method, cluster_size=4))
        token = CancellationToken()
        token.cancel("client went away")
        budget = QueryBudget(cancellation=token)
        with pytest.raises(QueryAborted) as exc:
            executor.execute(plan, query, budget=budget)
        assert exc.value.cause is AbortCause.CANCELLED
