"""Unit tests for the join graph and query-shape classification."""

import pytest

from repro import parse_query
from repro.core import JoinGraph, QueryShape
from repro.core import bitset as bs
from repro.rdf.terms import Variable
from repro.workloads.generators import (
    chain_query,
    cycle_query,
    dense_query,
    star_query,
    tree_query,
)


class TestFigure1:
    """Properties of the running example, checked against the paper."""

    def test_vertex_counts(self, fig1_graph):
        assert fig1_graph.size == 7
        # join variables: ?a ?b ?c ?d ?e (?f ?g appear once)
        assert {v.name for v in fig1_graph.join_variables} == {"a", "b", "c", "d", "e"}

    def test_ntp_example_1(self, fig1_graph):
        """Example 1: Ntp(?c) = {tp2, tp6}, degree 2."""
        ntp = fig1_graph.ntp(Variable("c"))
        assert bs.to_indices(ntp) == [1, 5]  # 0-based tp2/tp6
        assert fig1_graph.degree(Variable("c")) == 2

    def test_degree_of_a(self, fig1_graph):
        # ?a appears in tp1, tp2, tp3, tp7
        assert fig1_graph.degree(Variable("a")) == 4
        assert fig1_graph.max_degree() == 4

    def test_shape_is_dense(self, fig1_graph):
        assert fig1_graph.shape() is QueryShape.DENSE

    def test_full_query_connected(self, fig1_graph):
        assert fig1_graph.is_connected(fig1_graph.full)

    def test_component_structure_without_a(self, fig1_graph):
        """Removing ?a: {tp1,tp5}, {tp2,tp6,tp7}, {tp3,tp4} (tp7 joins ?d with tp6)."""
        components = fig1_graph.connected_components(
            fig1_graph.full, exclude=Variable("a")
        )
        index_sets = sorted(tuple(bs.to_indices(c)) for c in components)
        assert index_sets == [(0, 4), (1, 5, 6), (2, 3)]


class TestConnectivity:
    def test_empty_and_singleton_connected(self, fig1_graph):
        assert fig1_graph.is_connected(0)
        assert fig1_graph.is_connected(bs.bit(3))

    def test_disconnected_subquery(self, fig1_graph):
        # tp4 (?e ?g) and tp5 (?b ?f) share no variable
        assert not fig1_graph.is_connected(bs.from_indices([3, 4]))

    def test_neighbors(self, fig1_graph):
        # tp4 touches only ?e -> neighbor is tp3
        assert bs.to_indices(fig1_graph.neighbors(bs.bit(3))) == [2]

    def test_neighbors_exclude_variable(self, fig1_graph):
        # tp1 neighbors: via ?a -> tp2, tp3, tp7; via ?b -> tp5
        assert bs.to_indices(fig1_graph.neighbors(bs.bit(0))) == [1, 2, 4, 6]
        assert bs.to_indices(
            fig1_graph.neighbors(bs.bit(0), exclude=Variable("a"))
        ) == [4]


class TestShapes:
    def test_chain(self):
        assert JoinGraph(chain_query(5)).shape() is QueryShape.CHAIN

    def test_two_pattern_chain_vs_star(self):
        # L2-style: object of one joins subject of the other -> chain
        chain2 = parse_query(
            "SELECT * WHERE { ?x <http://e/p> ?y . ?y <http://e/q> <http://e/o> . }"
        )
        assert JoinGraph(chain2).shape() is QueryShape.CHAIN
        # L1-style: both share the subject -> star
        star2 = parse_query(
            "SELECT * WHERE { ?x <http://e/p> <http://e/a> . ?x <http://e/q> <http://e/b> . }"
        )
        assert JoinGraph(star2).shape() is QueryShape.STAR

    def test_cycle(self):
        assert JoinGraph(cycle_query(6)).shape() is QueryShape.CYCLE

    def test_star(self):
        jg = JoinGraph(star_query(7))
        assert jg.shape() is QueryShape.STAR
        assert jg.max_degree() == 7

    def test_tree(self):
        jg = JoinGraph(tree_query(8))
        assert jg.shape() in (QueryShape.TREE, QueryShape.CHAIN, QueryShape.STAR)
        assert not jg.is_cyclic()

    def test_dense(self):
        jg = JoinGraph(dense_query(10))
        assert jg.shape() is QueryShape.DENSE
        assert jg.cycle_rank() >= 2

    def test_single_pattern(self):
        q = parse_query("SELECT * WHERE { ?x <http://e/p> ?y . }")
        assert JoinGraph(q).shape() is QueryShape.SINGLE

    def test_vt_vj_ratio(self):
        jg = JoinGraph(chain_query(5))
        assert jg.vt_vj_ratio() == pytest.approx(5 / 4)
        single = parse_query("SELECT * WHERE { ?x <http://e/p> ?y . }")
        assert JoinGraph(single).vt_vj_ratio() == float("inf")


class TestVariablesOf:
    def test_variables_of_subquery(self, fig1_graph):
        # tp1 = ?b p1 ?a, tp5 = ?b p5 ?f
        names = {v.name for v in fig1_graph.variables_of(bs.from_indices([0, 4]))}
        assert names == {"a", "b", "f"}

    def test_shared_variables(self, fig1_graph):
        shared = fig1_graph.shared_variables(bs.bit(0), bs.bit(4))
        assert {v.name for v in shared} == {"b"}

    def test_join_variables_in(self, fig1_graph):
        inside = fig1_graph.join_variables_in(bs.from_indices([0, 4]))
        assert {v.name for v in inside} == {"b"}
