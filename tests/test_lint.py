"""Tests for the determinism lint (analysis.lint).

Each rule is exercised on seeded bad source via ``check_source`` under a
pretend path (rule scoping is path-based), plus the suppression syntax,
the path exemptions, and the CLI driver over the real tree — which must
be clean, since every true positive was fixed in this PR.
"""

import subprocess
import sys
import textwrap

import pytest

from repro.analysis.lint import check_source, lint_paths
from repro.analysis.lint.diagnostics import (
    Diagnostic,
    Severity,
    parse_suppressions,
)
from repro.analysis.lint.rules import run_rules

CORE = "src/repro/core/fake.py"
PARTITIONING = "src/repro/partitioning/fake.py"
ENGINE = "src/repro/engine/fake.py"
TESTS = "tests/test_fake.py"


def findings(source, path=CORE, select=None):
    return check_source(textwrap.dedent(source), path, select=select)


def codes(source, path=CORE, select=None):
    return [f.code for f in findings(source, path, select)]


class TestLint001SetIteration:
    def test_for_over_set_literal(self):
        assert codes("for x in {1, 2, 3}:\n    pass\n") == ["LINT001"]

    def test_for_over_set_call_and_frozenset(self):
        src = """
        for x in set(items):
            pass
        for y in frozenset(items):
            pass
        """
        assert codes(src) == ["LINT001", "LINT001"]

    def test_known_set_returning_methods(self):
        src = """
        for v in pattern.variables():
            pass
        for v in graph.variables_of(bits):
            pass
        """
        assert codes(src) == ["LINT001", "LINT001"]

    def test_setish_name_tracking_through_assignment(self):
        src = """
        shared = left.variables() & right.variables()
        for v in shared:
            pass
        """
        assert codes(src) == ["LINT001"]

    def test_annotated_parameter_is_setish(self):
        src = """
        from typing import FrozenSet

        def f(vars: FrozenSet[str]) -> None:
            for v in vars:
                pass
        """
        assert codes(src) == ["LINT001"]

    def test_string_annotation_is_setish(self):
        src = """
        def f(vars: "FrozenSet[str]") -> None:
            return [v for v in vars]
        """
        assert codes(src) == ["LINT001"]

    def test_same_module_setish_return_annotation(self):
        src = """
        def shared() -> set:
            return {1}

        for v in shared():
            pass
        """
        assert codes(src) == ["LINT001"]

    def test_sorted_wrapper_is_clean(self):
        src = """
        for x in sorted({1, 2, 3}):
            pass
        result = sorted(v for v in pattern.variables())
        """
        assert codes(src) == []

    def test_order_insensitive_consumers_are_clean(self):
        src = """
        ok = any(v.name == "x" for v in pattern.variables())
        n = len({1, 2})
        m = min({1, 2})
        everything = all(check(v) for v in graph.variables_of(bits))
        """
        assert codes(src) == []

    def test_sum_over_set_is_flagged(self):
        # float addition is not associative: sum() over a set is NOT
        # order-insensitive, unlike any/all/min/max
        src = "total = sum(w for w in set(weights))\n"
        assert codes(src) == ["LINT001"]

    def test_list_and_tuple_materialization_flagged(self):
        src = """
        a = list({1, 2})
        b = tuple(pattern.variables())
        c = enumerate(set(items))
        """
        assert codes(src) == ["LINT001", "LINT001", "LINT001"]

    def test_str_join_over_set_flagged(self):
        assert codes('text = ",".join({"a", "b"})\n') == ["LINT001"]

    def test_dict_comprehension_over_set_flagged(self):
        src = "d = {v: 1 for v in pattern.variables()}\n"
        assert codes(src) == ["LINT001"]

    def test_set_comprehension_over_set_is_clean(self):
        # sets in, sets out: no order is materialized
        assert codes("s = {v for v in pattern.variables()}\n") == []

    def test_dict_iteration_is_clean(self):
        src = """
        d = {"a": 1}
        for k in d:
            pass
        """
        assert codes(src) == []

    def test_partitioning_path_in_scope(self):
        assert codes("for x in {1}:\n    pass\n", path=PARTITIONING) == ["LINT001"]

    def test_non_critical_and_test_paths_exempt(self):
        src = "for x in {1, 2}:\n    pass\n"
        assert codes(src, path=ENGINE) == []
        assert codes(src, path=TESTS) == []
        assert codes(src, path="src/repro/core/test_fake.py") == []


class TestLint002UnseededRandom:
    def test_module_level_random_calls(self):
        src = """
        import random

        x = random.random()
        y = random.choice([1, 2])
        """
        assert codes(src, path=ENGINE) == ["LINT002", "LINT002"]

    def test_unseeded_random_constructor(self):
        assert codes("rng = random.Random()\n") == ["LINT002"]

    def test_seeded_random_is_clean(self):
        src = """
        import random

        rng = random.Random(42)
        sys_rng = random.SystemRandom()
        rng.shuffle(items)
        """
        assert codes(src) == []

    def test_from_import_of_unseeded_names(self):
        assert codes("from random import choice, shuffle\n") == ["LINT002"]
        assert codes("from random import Random\n") == []

    def test_tests_exempt(self):
        assert codes("x = random.random()\n", path=TESTS) == []


class TestLint003FloatEquality:
    def test_cost_name_equality(self):
        assert codes("if cost == best_cost:\n    pass\n") == ["LINT003"]

    def test_attribute_and_float_literal(self):
        assert codes("flag = node.cost == 0.0\n") == ["LINT003"]
        assert codes("flag = ratio != 1.5\n") == ["LINT003"]

    def test_severity_is_warning(self):
        (finding,) = findings("if cost == 1.0:\n    pass\n")
        assert finding.severity is Severity.WARNING

    def test_int_and_unrelated_names_clean(self):
        src = """
        if count == 3:
            pass
        if name == other_name:
            pass
        """
        assert codes(src) == []

    def test_ordering_comparisons_clean(self):
        assert codes("if cost < best_cost:\n    pass\n") == []

    def test_out_of_scope_path_exempt(self):
        assert codes("if cost == 1.0:\n    pass\n", path=ENGINE) == []


class TestLint004MutableDefaults:
    def test_literal_defaults(self):
        src = """
        def f(x=[], y={}, z={1}):
            pass
        """
        assert codes(src) == ["LINT004", "LINT004", "LINT004"]

    def test_constructor_defaults_and_kwonly(self):
        src = """
        def f(x=list(), *, y=dict()):
            pass
        """
        assert codes(src) == ["LINT004", "LINT004"]

    def test_none_and_immutable_defaults_clean(self):
        src = """
        def f(x=None, y=(), z="s", w=0):
            pass
        """
        assert codes(src) == []

    def test_applies_outside_core_too(self):
        assert codes("def f(x=[]):\n    pass\n", path=ENGINE) == ["LINT004"]


class TestSuppression:
    def test_inline_disable(self):
        src = "for x in {1}:  # lint: disable=LINT001\n    pass\n"
        assert codes(src) == []

    def test_disable_with_justification_text(self):
        src = "for x in {1}:  # lint: disable=LINT001 order-insensitive fold\n    pass\n"
        assert codes(src) == []

    def test_disable_all(self):
        src = "for x in {1}:  # lint: disable=all\n    pass\n"
        assert codes(src) == []

    def test_disable_other_code_does_not_apply(self):
        src = "for x in {1}:  # lint: disable=LINT002\n    pass\n"
        assert codes(src) == ["LINT001"]

    def test_disable_is_per_line(self):
        src = """
        for x in {1}:  # lint: disable=LINT001
            pass
        for y in {2}:
            pass
        """
        assert codes(src) == ["LINT001"]

    def test_parse_suppressions_multiple_codes(self):
        parsed = parse_suppressions("x = 1  # lint: disable=LINT001,LINT003\n")
        assert parsed == {1: frozenset({"LINT001", "LINT003"})}

    def test_malformed_directives_ignored(self):
        assert parse_suppressions("x = 1  # lint: whatever\n") == {}
        assert parse_suppressions("x = 1  # lint: disable=\n") == {}


class TestDriver:
    def test_syntax_error_yields_lint000(self):
        (finding,) = findings("def broken(:\n")
        assert finding.code == "LINT000"
        assert finding.severity is Severity.ERROR

    def test_select_restricts_rules(self):
        src = """
        def f(x=[]):
            for v in {1}:
                pass
        """
        assert codes(src, select=["LINT004"]) == ["LINT004"]
        assert codes(src, select=["lint001"]) == ["LINT001"]

    def test_unknown_rule_rejected(self):
        import ast

        with pytest.raises(ValueError, match="unknown lint rule"):
            run_rules(ast.parse("x = 1"), CORE, select=["LINT999"])

    def test_diagnostic_render_format(self):
        d = Diagnostic(
            path="a.py", line=3, column=7, code="LINT001",
            severity=Severity.ERROR, message="msg",
        )
        assert d.render() == "a.py:3:7: LINT001 error: msg"

    def test_findings_carry_locations(self):
        (finding,) = findings("x = 1\nfor v in {1}:\n    pass\n")
        assert (finding.path, finding.line) == (CORE, 2)

    def test_real_tree_is_clean(self):
        # acceptance criterion: the shipped tree has zero findings
        assert lint_paths(["src/repro"]) == []

    def test_cli_exit_codes(self, tmp_path):
        clean = subprocess.run(
            [sys.executable, "-m", "repro", "lint", "src/repro"],
            capture_output=True, text=True,
        )
        assert clean.returncode == 0, clean.stdout + clean.stderr
        assert "clean" in clean.stdout
        bad = tmp_path / "core" / "dirty.py"
        bad.parent.mkdir()
        bad.write_text("for x in {1, 2}:\n    pass\n", encoding="utf-8")
        dirty = subprocess.run(
            [sys.executable, "-m", "repro", "lint", str(tmp_path)],
            capture_output=True, text=True,
        )
        assert dirty.returncode == 1
        assert "LINT001" in dirty.stdout


class TestLint005WallClock:
    def test_time_time_call_flagged_in_core(self):
        src = """
        import time
        started = time.time()
        """
        assert codes(src) == ["LINT005"]

    def test_time_monotonic_call_flagged_in_engine(self):
        src = """
        import time
        if time.monotonic() > limit:
            pass
        """
        assert codes(src, path=ENGINE) == ["LINT005"]

    def test_from_import_flagged(self):
        assert codes("from time import monotonic\n") == ["LINT005"]
        assert codes("from time import time, monotonic\n") == ["LINT005"]

    def test_perf_counter_is_exempt(self):
        src = """
        import time
        from time import perf_counter
        elapsed = time.perf_counter() - started
        """
        assert codes(src) == []

    def test_sanctioned_clock_module_exempt(self):
        src = """
        import time
        now = time.monotonic()
        """
        assert codes(src, path="src/repro/core/governance.py") == []

    def test_outside_clock_governed_parts_exempt(self):
        src = """
        import time
        now = time.time()
        """
        assert codes(src, path="src/repro/analysis/fake.py") == []
        assert codes(src, path=TESTS) == []

    def test_per_line_disable(self):
        src = """
        import time
        now = time.monotonic()  # lint: disable=LINT005
        later = time.monotonic()
        """
        assert codes(src) == ["LINT005"]

    def test_severity_is_error(self):
        (finding,) = findings("from time import time\n")
        assert finding.severity is Severity.ERROR
        assert finding.code == "LINT005"
