"""Tests for maximal local queries and local-query detection (Appendix A)."""

import pytest

from repro import parse_query
from repro.core import JoinGraph, LocalQueryIndex
from repro.core import bitset as bs
from repro.partitioning import (
    HashSubjectObject,
    PathBMC,
    SemanticHash,
    UndirectedOneHop,
)


class TestHashSOExample7:
    """Example 7: hash partitioning, MLQ at ?a = {tp1, tp2, tp3, tp7}."""

    def test_mlq_at_a(self, fig1_query):
        jg = JoinGraph(fig1_query)
        index = LocalQueryIndex(jg, HashSubjectObject())
        expected = bs.from_indices([0, 1, 2, 6])
        assert expected in index.maximal_local_queries

    def test_subqueries_of_mlq_are_local(self, fig1_query):
        jg = JoinGraph(fig1_query)
        index = LocalQueryIndex(jg, HashSubjectObject())
        # {tp1, tp2, tp3} from the example
        assert index.is_local(bs.from_indices([0, 1, 2]))
        assert index.is_local(bs.from_indices([0, 1, 2, 6]))

    def test_non_shared_vertex_subquery_not_local(self, fig1_query):
        jg = JoinGraph(fig1_query)
        index = LocalQueryIndex(jg, HashSubjectObject())
        # tp1 (?b,?a) and tp4 (?e,?g) share no vertex
        assert not index.is_local(bs.from_indices([0, 3]))
        # full query not local under hash partitioning
        assert not index.is_local(jg.full)

    def test_singletons_always_local(self, fig1_query):
        jg = JoinGraph(fig1_query)
        for partitioning in (None, HashSubjectObject(), SemanticHash(2), PathBMC()):
            index = LocalQueryIndex(jg, partitioning)
            for i in range(jg.size):
                assert index.is_local(bs.bit(i))


class TestPathPartitioningExample5:
    """Example 5: path partitioning, MLQ at ?b = {tp1, tp3, tp4, tp5, tp7}."""

    def test_mlq_at_b(self, fig1_query):
        jg = JoinGraph(fig1_query)
        index = LocalQueryIndex(jg, PathBMC())
        expected = bs.from_indices([0, 2, 3, 4, 6])
        assert expected in index.maximal_local_queries

    def test_subqueries_of_reachable_set_are_local(self, fig1_query):
        jg = JoinGraph(fig1_query)
        index = LocalQueryIndex(jg, PathBMC())
        assert index.is_local(bs.from_indices([0, 2, 3]))
        assert index.is_local(bs.from_indices([2, 3, 6]))


class TestSemanticHash:
    def test_two_hop_forward(self):
        q = parse_query(
            """
            SELECT * WHERE {
              ?a <http://e/p> ?b .
              ?b <http://e/q> ?c .
              ?c <http://e/r> ?d .
            }
            """
        )
        jg = JoinGraph(q)
        index = LocalQueryIndex(jg, SemanticHash(2))
        # 2 forward hops from ?a cover tp0, tp1 but not tp2
        assert index.is_local(0b011)
        assert index.is_local(0b110)  # 2 hops from ?b
        assert not index.is_local(0b111)
        # 3f covers the whole chain
        index3 = LocalQueryIndex(jg, SemanticHash(3))
        assert index3.is_local(0b111)

    def test_hops_validation(self):
        with pytest.raises(ValueError):
            SemanticHash(0)


class TestNoPartitioning:
    def test_only_singletons_local(self, fig1_graph):
        index = LocalQueryIndex(fig1_graph, None)
        assert index.maximal_local_queries == []
        assert index.is_local(bs.bit(2))
        assert not index.is_local(bs.from_indices([0, 1]))


class TestMLQProperties:
    def test_mlqs_deduplicated_and_maximal(self, fig1_query):
        jg = JoinGraph(fig1_query)
        for method in (HashSubjectObject(), SemanticHash(2), PathBMC(), UndirectedOneHop()):
            mlqs = LocalQueryIndex(jg, method).maximal_local_queries
            assert len(mlqs) == len(set(mlqs))
            for a in mlqs:
                for b in mlqs:
                    if a != b:
                        assert not bs.is_subset(a, b)

    def test_mlqs_are_connected(self, fig1_query):
        jg = JoinGraph(fig1_query)
        for method in (HashSubjectObject(), SemanticHash(2), PathBMC()):
            for mlq in LocalQueryIndex(jg, method).maximal_local_queries:
                assert jg.is_connected(mlq)
