"""Soundness of local-query detection against real data placement.

Definition 2 of the paper: a query is local iff every match is fully
contained in some partitioning element.  Theorem 5 reduces the check to
bitset containment in a maximal local query.  This suite closes the
loop *empirically*: whenever the optimizer declares a subquery local,
executing it with worker-local joins only (zero network) must reproduce
the single-node reference result — for random data, random queries, and
every partitioning method.

This is the property the whole partition-aware design rests on: an
unsound `is_local` would silently drop results.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import JoinGraph, LocalQueryIndex
from repro.core import bitset as bs
from repro.core.cardinality import CardinalityEstimator, StatisticsCatalog
from repro.core.cost import PlanBuilder
from repro.core.counting import connected_subqueries
from repro.engine import Cluster, Executor, evaluate_reference
from repro.partitioning import (
    HashSubjectObject,
    PathBMC,
    SemanticHash,
    UndirectedOneHop,
)
from repro.rdf import Dataset, IRI, triple
from repro.rdf.terms import Variable
from repro.sparql.ast import BGPQuery, TriplePattern

METHODS = [HashSubjectObject(), SemanticHash(2), PathBMC(), UndirectedOneHop()]


def _random_dataset(rng: random.Random) -> Dataset:
    triples = [
        triple(
            f"http://e/v{rng.randrange(20)}",
            f"http://e/p{rng.randrange(3)}",
            f"http://e/v{rng.randrange(20)}",
        )
        for _ in range(60)
    ]
    return Dataset.from_triples(triples)


def _random_query(rng: random.Random, size: int) -> BGPQuery:
    predicates = [IRI(f"http://e/p{i}") for i in range(3)]
    variables = [Variable("x0")]
    patterns = []
    for i in range(size):
        anchor = rng.choice(variables)
        fresh = Variable(f"x{i + 1}")
        variables.append(fresh)
        if rng.random() < 0.5:
            patterns.append(TriplePattern(anchor, rng.choice(predicates), fresh))
        else:
            patterns.append(TriplePattern(fresh, rng.choice(predicates), anchor))
    return BGPQuery(patterns, name="locality")


@settings(
    max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)
@given(
    data_seed=st.integers(min_value=0, max_value=9999),
    query_seed=st.integers(min_value=0, max_value=9999),
    size=st.integers(min_value=2, max_value=4),
    method_index=st.integers(min_value=0, max_value=len(METHODS) - 1),
)
def test_local_subqueries_execute_locally_and_correctly(
    data_seed, query_seed, size, method_index
):
    dataset = _random_dataset(random.Random(data_seed))
    query = _random_query(random.Random(query_seed), size)
    method = METHODS[method_index]
    join_graph = JoinGraph(query)
    index = LocalQueryIndex(join_graph, method)
    cluster = Cluster.build(dataset, method, cluster_size=3)
    catalog = StatisticsCatalog.from_dataset(query, dataset)
    builder = PlanBuilder(join_graph, CardinalityEstimator(join_graph, catalog))
    executor = Executor(cluster)
    for sub in connected_subqueries(join_graph):
        if bs.popcount(sub) < 2 or not index.is_local(sub):
            continue
        subquery = BGPQuery(join_graph.pattern_set(sub), name="sub")
        plan = builder.local_join_plan(sub)
        relation, metrics = executor.execute(plan)
        reference = evaluate_reference(subquery, dataset.graph)
        assert metrics.total_tuples_shipped == 0
        assert relation.rows == reference.rows, (
            f"method={method.name} subquery={bs.to_indices(sub)}"
        )


@pytest.mark.parametrize("method", METHODS, ids=lambda m: m.name)
def test_benchmark_query_local_subqueries(method):
    """The same soundness check on a real benchmark query (L7)."""
    from repro.workloads import generate_lubm, lubm_query

    dataset = generate_lubm()
    query = lubm_query("L7")
    join_graph = JoinGraph(query)
    index = LocalQueryIndex(join_graph, method)
    cluster = Cluster.build(dataset, method, cluster_size=4)
    catalog = StatisticsCatalog.from_dataset(query, dataset)
    builder = PlanBuilder(join_graph, CardinalityEstimator(join_graph, catalog))
    executor = Executor(cluster)
    checked = 0
    for sub in connected_subqueries(join_graph):
        if bs.popcount(sub) < 2 or not index.is_local(sub):
            continue
        checked += 1
        subquery = BGPQuery(join_graph.pattern_set(sub), name="sub")
        relation, metrics = executor.execute(builder.local_join_plan(sub))
        assert metrics.total_tuples_shipped == 0
        assert relation.rows == evaluate_reference(subquery, dataset.graph).rows
    assert checked > 0  # hash-so makes L7's stars local; others too
