"""Tests for MapReduce stage compilation and the overhead crossover."""

import pytest

from repro.baselines import MSCOptimizer
from repro.core import LocalQueryIndex, TopDownEnumerator
from repro.core.optimizer import make_builder
from repro.core.plans import JoinAlgorithm
from repro.engine.mapreduce import (
    MapReduceSimulator,
    compile_stages,
    overhead_crossover,
    overhead_crossover_analysis,
)
from repro.partitioning import HashSubjectObject
from repro.workloads.generators import chain_query, star_query, tree_query


@pytest.fixture
def builder():
    return make_builder(chain_query(5), seed=2)


class TestCompileStages:
    def test_scan_only_plan_has_no_stages(self, builder):
        schedule = compile_stages(builder.scan(0))
        assert schedule.job_count == 0
        assert schedule.wave_count == 0

    def test_flat_local_plan_has_no_jobs(self, builder):
        plan = builder.local_join_plan(0b11111)
        schedule = compile_stages(plan)
        assert schedule.job_count == 0

    def test_left_deep_plan_one_job_per_join(self, builder):
        plan = builder.scan(0)
        for i in range(1, 5):
            plan = builder.join(JoinAlgorithm.REPARTITION, [plan, builder.scan(i)])
        schedule = compile_stages(plan)
        assert schedule.job_count == 4
        assert schedule.wave_count == 4  # strictly sequential

    def test_bushy_plan_parallel_waves(self, builder):
        left = builder.join(
            JoinAlgorithm.REPARTITION, [builder.scan(0), builder.scan(1)]
        )
        right = builder.join(
            JoinAlgorithm.REPARTITION, [builder.scan(3), builder.scan(4)]
        )
        mid = builder.join(JoinAlgorithm.BROADCAST, [right, builder.scan(2)])
        root = builder.join(JoinAlgorithm.REPARTITION, [left, mid])
        schedule = compile_stages(root)
        assert schedule.job_count == 4
        # left and right run in wave 0, mid in wave 1, root in wave 2
        assert schedule.wave_count == 3
        assert len(schedule.jobs_in_wave(0)) == 2

    def test_local_join_rides_along(self, builder):
        local = builder.local_join_plan(0b00011)
        root = builder.join(JoinAlgorithm.REPARTITION, [local, builder.scan(2)])
        schedule = compile_stages(root)
        assert schedule.job_count == 1
        assert schedule.wave_count == 1


class TestSimulator:
    def test_zero_overhead_equals_wave_data_costs(self, builder):
        plan = builder.join(
            JoinAlgorithm.REPARTITION, [builder.scan(0), builder.scan(1)]
        )
        schedule, makespan = MapReduceSimulator().simulate_plan(plan)
        assert makespan == pytest.approx(
            schedule.stages[0].data_cost(builder.parameters)
        )

    def test_overhead_charged_per_wave(self, builder):
        plan = builder.scan(0)
        for i in range(1, 5):
            plan = builder.join(JoinAlgorithm.REPARTITION, [plan, builder.scan(i)])
        base = MapReduceSimulator(job_startup_cost=0.0).makespan(
            compile_stages(plan)
        )
        with_overhead = MapReduceSimulator(job_startup_cost=10.0).makespan(
            compile_stages(plan)
        )
        assert with_overhead == pytest.approx(base + 4 * 10.0)


class TestCrossover:
    def test_flat_beats_deep_at_high_overhead(self):
        """The paper's flat-plan motivation, made quantitative: MSC's
        plan wins once per-job startup dominates data movement."""
        import random

        query = tree_query(8, random.Random(1))
        builder = make_builder(query, seed=1)
        index = LocalQueryIndex(builder.join_graph, HashSubjectObject())
        bushy = TopDownEnumerator(builder.join_graph, builder, index).optimize().plan
        flat = (
            MSCOptimizer(builder.join_graph, builder, index, timeout_seconds=60)
            .optimize()
            .plan
        )
        flat_schedule = compile_stages(flat)
        bushy_schedule = compile_stages(bushy)
        if bushy_schedule.wave_count <= flat_schedule.wave_count:
            pytest.skip("optimal plan already as flat as MSC's on this instance")
        crossover = overhead_crossover(flat, bushy, builder.parameters)
        assert crossover is not None
        big = MapReduceSimulator(job_startup_cost=crossover * 10 + 1)
        assert big.makespan(flat_schedule) < big.makespan(bushy_schedule)
        small = MapReduceSimulator(job_startup_cost=0.0)
        assert small.makespan(flat_schedule) >= small.makespan(bushy_schedule)

    def test_crossover_none_when_not_flatter(self, builder):
        plan = builder.join(
            JoinAlgorithm.REPARTITION, [builder.scan(0), builder.scan(1)]
        )
        assert overhead_crossover(plan, plan) is None

    def test_analysis_separates_always_from_never(self, builder):
        """The old None return conflated two opposite regimes; the
        analysis object tells them apart."""
        cheap = builder.local_join_plan(0b11)  # 0 waves, minimal data
        deep = builder.scan(0)
        for i in range(1, 5):
            deep = builder.join(JoinAlgorithm.REPARTITION, [deep, builder.scan(i)])

        # "flat" plan both flatter AND cheaper -> wins for every overhead
        always = overhead_crossover_analysis(cheap, deep)
        assert always.flat_always_wins
        assert not always.flat_never_wins
        assert always.crossover is None
        assert "always" in always.describe()

        # swapped roles: deeper AND costlier -> never wins
        never = overhead_crossover_analysis(deep, cheap)
        assert never.flat_never_wins
        assert not never.flat_always_wins
        assert never.crossover is None
        assert "never" in never.describe()

        # the legacy wrapper mapped BOTH of these to None/0.0-style
        # answers; make sure each analysis agrees with the simulator
        for overhead in (0.0, 5.0, 50.0):
            sim = MapReduceSimulator(job_startup_cost=overhead)
            assert sim.makespan(compile_stages(cheap)) <= sim.makespan(
                compile_stages(deep)
            )

    def test_analysis_crossover_matches_simulator(self):
        import random

        query = tree_query(8, random.Random(1))
        builder = make_builder(query, seed=1)
        index = LocalQueryIndex(builder.join_graph, HashSubjectObject())
        bushy = TopDownEnumerator(builder.join_graph, builder, index).optimize().plan
        flat = (
            MSCOptimizer(builder.join_graph, builder, index, timeout_seconds=60)
            .optimize()
            .plan
        )
        analysis = overhead_crossover_analysis(flat, bushy, builder.parameters)
        if analysis.wave_difference <= 0:
            pytest.skip("optimal plan already as flat as MSC's on this instance")
        assert analysis.crossover == overhead_crossover(flat, bushy, builder.parameters)
        assert analysis.crossover is not None
        flat_schedule, bushy_schedule = compile_stages(flat), compile_stages(bushy)
        above = MapReduceSimulator(
            builder.parameters, job_startup_cost=analysis.crossover + 1.0
        )
        below = MapReduceSimulator(builder.parameters, job_startup_cost=0.0)
        assert above.makespan(flat_schedule) < above.makespan(bushy_schedule)
        assert below.makespan(flat_schedule) >= below.makespan(bushy_schedule)
