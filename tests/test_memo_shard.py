"""Tests for the memo-sharded parallel search (core.memo_shard).

Three contracts:

* **tiering** — :func:`subquery_tiers` enumerates exactly the connected
  subqueries, grouped by popcount (checked against a brute-force
  connectivity sweep);
* **equivalence** — the sharded search returns bit-identical plan costs
  and verifier-clean plans across algorithms × partitioners × seeds
  (hypothesis property test);
* **governance** — an expiring anytime deadline yields a *complete*,
  labelled, verifier-clean degraded plan assembled from finished tiers;
  without ``anytime`` it raises :class:`OptimizationTimeout`.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.analysis import PlanVerifier, VerificationContext, verify_result
from repro.core import optimize, optimize_query_parallel
from repro.core.enumeration import OptimizationTimeout
from repro.core.governance import Deadline, QueryBudget
from repro.core.join_graph import JoinGraph
from repro.core.memo_shard import optimize_memo_sharded, subquery_tiers
from repro.core import bitset as bs
from repro.partitioning import (
    DynamicPartitioning,
    HashSubjectObject,
    PathBMC,
    SemanticHash,
    UndirectedOneHop,
)
from repro.workloads.generators import (
    chain_query,
    cycle_query,
    dense_query,
    star_query,
    tree_query,
)


def brute_force_connected(join_graph):
    """Every connected subquery bitset, by exhaustive enumeration."""
    return {
        bits
        for bits in range(1, join_graph.full + 1)
        if join_graph.is_connected(bits)
    }


class TestSubqueryTiers:
    @pytest.mark.parametrize(
        "query",
        [
            chain_query(5),
            cycle_query(6),
            star_query(5),
            tree_query(7, random.Random(1)),
            dense_query(7, random.Random(2)),
        ],
        ids=["chain5", "cycle6", "star5", "tree7", "dense7"],
    )
    def test_tiers_are_exactly_the_connected_subqueries(self, query):
        join_graph = JoinGraph(query)
        tiers = subquery_tiers(join_graph)
        flattened = {bits for tier in tiers for bits in tier}
        assert flattened == brute_force_connected(join_graph)
        for k, tier in enumerate(tiers):
            assert all(bs.popcount(bits) == k for bits in tier)
            assert tier == sorted(tier)  # deterministic schedule order
        assert tiers[0] == []
        assert tiers[len(query)] == [join_graph.full]

    def test_chain_tier_sizes(self):
        """A chain of n patterns has n-k+1 connected k-subqueries."""
        join_graph = JoinGraph(chain_query(6))
        tiers = subquery_tiers(join_graph)
        assert [len(tier) for tier in tiers[1:]] == [6, 5, 4, 3, 2, 1]


class TestMemoShardEquivalence:
    """Serial ≡ memo-sharded: cost, plan shape, and verifier verdict."""

    PARTITIONERS = [
        None,
        HashSubjectObject(),
        SemanticHash(2),
        PathBMC(),
        UndirectedOneHop(),
        "dynamic",  # built per query: DynamicPartitioning needs hot queries
    ]

    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        algorithm=st.sampled_from(["td-cmd", "td-cmdp"]),
        partitioner=st.sampled_from(range(len(PARTITIONERS))),
        seed=st.integers(min_value=0, max_value=7),
        shape=st.sampled_from(["cycle", "tree", "dense"]),
    )
    def test_cost_identity_and_verifier_clean(
        self, algorithm, partitioner, seed, shape
    ):
        rng = random.Random(seed)
        query = {
            "cycle": lambda: cycle_query(7),
            "tree": lambda: tree_query(8, rng),
            "dense": lambda: dense_query(7, rng),
        }[shape]()
        method = self.PARTITIONERS[partitioner]
        if method == "dynamic":
            method = DynamicPartitioning(HashSubjectObject(), [query])
        serial = optimize(
            query, algorithm=algorithm, partitioning=method, seed=seed
        )
        parallel = optimize_query_parallel(
            query,
            algorithm=algorithm,
            jobs=2,
            partitioning=method,
            seed=seed,
            strategy="memo-shard",
        )
        assert parallel.cost == serial.cost  # bit-identical, not approx
        assert parallel.plan.describe() == serial.plan.describe()
        context = VerificationContext.for_query(
            query, partitioning=method, seed=seed
        )
        verify_result(parallel, context).raise_if_failed()

    def test_small_query_declines_to_serial(self):
        """A search space too small to shard returns None (fallback)."""
        from repro.core.optimizer import make_builder, resolve_statistics
        from repro.core.local_query import LocalQueryIndex
        from repro.core.enumeration import TopDownEnumerator
        from repro.core.cost import PAPER_PARAMETERS

        query = chain_query(2)
        statistics = resolve_statistics(query, None, None, 0)
        builder = make_builder(query, statistics)
        probe = TopDownEnumerator(
            builder.join_graph,
            builder,
            local_index=LocalQueryIndex(builder.join_graph, None),
        )
        assert (
            optimize_memo_sharded(
                query,
                "td-cmd",
                4,
                statistics,
                None,
                PAPER_PARAMETERS,
                builder,
                probe,
                None,
                None,
                False,
                0.0,
            )
            is None
        )


class TestMemoShardGovernance:
    def test_anytime_deadline_yields_complete_labelled_plan(self):
        """An expired deadline mid-search degrades to a complete plan
        merged from the finished tiers, labelled and verifier-clean."""
        query = dense_query(10, random.Random(3))
        budget = QueryBudget(
            deadline=Deadline.after(0.0), anytime=True, query_id="q-any"
        )
        result = optimize_query_parallel(
            query, algorithm="td-cmdp", jobs=2, budget=budget
        )
        assert result.stats.degraded
        assert "[anytime]" in result.algorithm
        assert "finished tiers" in result.stats.degradation_reason
        # the degraded plan still answers the *whole* query
        join_graph = JoinGraph(query)
        assert result.plan.bits == join_graph.full
        context = VerificationContext.for_query(query)
        report = PlanVerifier(
            context.with_profile(context.profile)
        ).verify(result.plan)
        report.raise_if_failed()

    def test_deadline_without_anytime_raises_timeout(self):
        query = dense_query(10, random.Random(3))
        budget = QueryBudget(deadline=Deadline.after(0.0), anytime=False)
        with pytest.raises(OptimizationTimeout):
            optimize_query_parallel(
                query, algorithm="td-cmdp", jobs=2, budget=budget
            )

    def test_generous_deadline_is_not_degraded(self):
        query = cycle_query(7)
        budget = QueryBudget(deadline=Deadline.after(600.0), anytime=True)
        result = optimize_query_parallel(
            query, algorithm="td-cmdp", jobs=2, budget=budget
        )
        assert not result.stats.degraded
        assert result.cost == optimize(query, algorithm="td-cmdp").cost
