"""Unit tests for the N-Triples codec."""

import pytest

from repro.rdf import (
    BlankNode,
    IRI,
    Literal,
    NTriplesError,
    RDFGraph,
    Triple,
    load_ntriples,
    parse_ntriples,
    save_ntriples,
    serialize_ntriples,
)


def parse_one(line: str) -> Triple:
    (result,) = list(parse_ntriples(line))
    return result


class TestParsing:
    def test_simple_triple(self):
        t = parse_one("<http://e/a> <http://e/p> <http://e/b> .")
        assert t == Triple(IRI("http://e/a"), IRI("http://e/p"), IRI("http://e/b"))

    def test_literal_object(self):
        t = parse_one('<http://e/a> <http://e/p> "hello" .')
        assert t.object == Literal("hello")

    def test_language_literal(self):
        t = parse_one('<http://e/a> <http://e/p> "bonjour"@fr .')
        assert t.object == Literal("bonjour", language="fr")

    def test_datatype_literal(self):
        t = parse_one('<http://e/a> <http://e/p> "5"^^<http://x/int> .')
        assert t.object == Literal("5", datatype="http://x/int")

    def test_escapes(self):
        t = parse_one('<http://e/a> <http://e/p> "line\\nbreak \\"q\\"" .')
        assert t.object.lexical == 'line\nbreak "q"'

    def test_unicode_escape(self):
        t = parse_one('<http://e/a> <http://e/p> "\\u00e9" .')
        assert t.object.lexical == "é"

    def test_blank_nodes(self):
        t = parse_one("_:x <http://e/p> _:y .")
        assert t.subject == BlankNode("x")
        assert t.object == BlankNode("y")

    def test_comments_and_blank_lines_skipped(self):
        doc = "# comment\n\n<http://e/a> <http://e/p> <http://e/b> .\n"
        assert len(list(parse_ntriples(doc))) == 1

    @pytest.mark.parametrize(
        "line",
        [
            "<http://e/a> <http://e/p> <http://e/b>",  # missing dot
            "<http://e/a> <http://e/p> .",  # missing object
            '"lit" <http://e/p> <http://e/b> .',  # literal subject
            "<http://e/a> _:p <http://e/b> .",  # blank predicate
            '<http://e/a> <http://e/p> "unterminated .',
            "<http://e/a <http://e/p> <http://e/b> .",  # unterminated IRI
        ],
    )
    def test_malformed_lines_raise(self, line):
        with pytest.raises(NTriplesError):
            list(parse_ntriples(line))

    def test_error_carries_line_number(self):
        doc = "<http://e/a> <http://e/p> <http://e/b> .\nbogus\n"
        with pytest.raises(NTriplesError) as excinfo:
            list(parse_ntriples(doc))
        assert excinfo.value.line_number == 2


class TestRoundTrip:
    def test_serialize_parse_round_trip(self):
        triples = [
            Triple(IRI("http://e/a"), IRI("http://e/p"), Literal("x\ny", language="")),
            Triple(BlankNode("b"), IRI("http://e/p"), IRI("http://e/c")),
            Triple(IRI("http://e/a"), IRI("http://e/q"), Literal("5", datatype="http://x/i")),
        ]
        doc = serialize_ntriples(triples)
        assert list(parse_ntriples(doc)) == triples

    def test_file_round_trip(self, tmp_path):
        triples = [Triple(IRI(f"http://e/{i}"), IRI("http://e/p"), Literal(str(i)))
                   for i in range(10)]
        path = tmp_path / "data.nt"
        assert save_ntriples(triples, path) == 10
        graph = load_ntriples(path)
        assert isinstance(graph, RDFGraph)
        assert len(graph) == 10
        assert set(graph) == set(triples)
