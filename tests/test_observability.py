"""The observability subsystem: spans, metrics, exporters, merging.

Covers the tentpole guarantees:

* span trees are well-formed (no orphans, no overlapping same-track
  siblings) for real traced optimizations;
* exporters round-trip (JSON-lines is loss-free; the Chrome trace-event
  export passes the format validator);
* the ``jobs > 1`` parallel search merges worker traces
  deterministically (one track per worker, stable ids);
* the legacy ``optimize(...)`` shim emits its :class:`DeprecationWarning`
  exactly once per process;
* the tracer-side counters reconcile with the optimizer's
  :class:`~repro.core.enumeration.EnumerationStats` and the engine's
  :class:`~repro.engine.metrics.ExecutionMetrics` (the satellite
  property test).
"""

from __future__ import annotations

import json
import warnings

import pytest

from repro import OptimizeOptions, Optimizer, parse_query
from repro.core import optimizer as optimizer_module
from repro.core.optimizer import optimize
from repro.core.plan_cache import PlanCache
from repro.engine import Cluster, Executor, FaultInjector
from repro.observability import (
    MetricsRegistry,
    Span,
    Tracer,
    flame_summary,
    span_coverage,
    spans_from_jsonl,
    to_chrome_trace,
    to_jsonl,
    validate_chrome_trace,
    validate_span_tree,
)
from repro.observability import runtime as obs
from repro.observability.spans import NULL_SPAN
from repro.partitioning import HashSubjectObject

SMALL_TEXT = """
PREFIX p: <http://example.org/>
SELECT * WHERE {
  ?x p:advisor ?y .
  ?y p:worksFor ?z .
  ?x p:memberOf ?z .
}
"""


def traced_session(**overrides) -> Optimizer:
    options = OptimizeOptions(trace=True, seed=42, **overrides)
    return Optimizer(options)


# ----------------------------------------------------------------------
# tracer primitives
# ----------------------------------------------------------------------
class TestTracer:
    def test_nested_spans_record_parentage(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        assert validate_span_tree(tracer.spans) == []

    def test_span_events_carry_timestamps_and_attributes(self):
        tracer = Tracer()
        with tracer.span("phase") as sp:
            sp.event("tick", n=1)
        (event,) = tracer.spans[0].events
        assert event.name == "tick"
        assert event.attributes == {"n": 1}
        assert sp.start <= event.timestamp <= sp.end

    def test_inactive_runtime_hands_out_the_null_span(self):
        assert obs.current_tracer() is None
        assert obs.span("anything") is NULL_SPAN
        assert obs.metrics() is None
        obs.count("nothing")  # all no-ops, no error
        obs.event("nothing")

    def test_activation_is_scoped(self):
        tracer = Tracer()
        with obs.activate(tracer):
            assert obs.current_tracer() is tracer
            with obs.span("work") as sp:
                assert sp is not NULL_SPAN
        assert obs.current_tracer() is None
        assert [sp.name for sp in tracer.spans] == ["work"]

    def test_validate_span_tree_flags_orphans_and_overlaps(self):
        orphan = Span("lost", span_id=2, parent_id=99, track="main", start=0.0)
        orphan.end = 1.0
        assert any("orphan" in p for p in validate_span_tree([orphan]))
        left = Span("a", span_id=1, parent_id=None, track="main", start=0.0)
        left.end = 2.0
        right = Span("b", span_id=2, parent_id=None, track="main", start=1.0)
        right.end = 3.0
        assert any("overlap" in p for p in validate_span_tree([left, right]))


class TestMetricsRegistry:
    def test_counters_gauges_histograms(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.counter("c").inc(4)
        registry.gauge("g").set(7)
        registry.histogram("h").observe(2.0)
        registry.histogram("h").observe(4.0)
        snap = registry.snapshot()
        assert snap["counters"]["c"] == 5
        assert snap["gauges"]["g"] == 7
        assert snap["histograms"]["h"]["count"] == 2
        assert snap["histograms"]["h"]["total"] == pytest.approx(6.0)
        assert registry.histogram("h").mean == pytest.approx(3.0)

    def test_counter_rejects_negative_increments(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("c").inc(-1)

    def test_merge_adds_counters_and_combines_histograms(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("c").inc(2)
        b.counter("c").inc(3)
        b.gauge("g").set(9)
        a.histogram("h").observe(1.0)
        b.histogram("h").observe(5.0)
        a.merge(b.snapshot())
        snap = a.snapshot()
        assert snap["counters"]["c"] == 5
        assert snap["gauges"]["g"] == 9
        assert snap["histograms"]["h"]["min"] == 1.0
        assert snap["histograms"]["h"]["max"] == 5.0


# ----------------------------------------------------------------------
# traced optimization
# ----------------------------------------------------------------------
class TestTracedOptimize:
    def test_fig1_trace_is_well_formed_and_covers_the_root(self, fig1_query):
        session = traced_session(algorithm="td-cmdp")
        session.optimize(fig1_query)
        tracer = session.tracer
        assert validate_span_tree(tracer.spans) == []
        (root,) = [sp for sp in tracer.roots() if sp.name == "optimize"]
        names = {sp.name for sp in tracer.spans}
        assert {"optimize", "statistics.resolve", "build", "enumerate"} <= names
        assert span_coverage(tracer, root) >= 0.8
        assert root.attributes["algorithm"] == "td-cmdp"
        assert root.attributes["cost"] > 0

    def test_untraced_session_records_nothing(self, fig1_query):
        session = Optimizer(OptimizeOptions(seed=42))
        session.optimize(fig1_query)
        assert session.tracer is None
        assert obs.current_tracer() is None

    def test_tracing_does_not_change_the_answer(self, fig1_query):
        plain = Optimizer(OptimizeOptions(seed=42)).optimize(fig1_query)
        traced = traced_session().optimize(fig1_query)
        assert traced.cost == plain.cost
        assert traced.algorithm == plain.algorithm
        assert traced.stats.summary() == plain.stats.summary()

    def test_plan_cache_lookups_surface_as_events_and_counters(self, fig1_query):
        session = traced_session(plan_cache=PlanCache())
        session.optimize(fig1_query)
        session.optimize(fig1_query)
        counters = session.tracer.metrics.snapshot()["counters"]
        assert counters["plan_cache.misses"] == 1
        assert counters["plan_cache.stores"] == 1
        assert counters["plan_cache.hits"] == 1
        events = [
            e.name for sp in session.tracer.spans for e in sp.events
        ]
        assert events.count("plan_cache.lookup") == 2

    def test_hgr_trace_records_jgr_rounds(self):
        query = parse_query(SMALL_TEXT, name="small")
        session = traced_session(
            algorithm="hgr-td-cmd", partitioning=HashSubjectObject()
        )
        session.optimize(query)
        names = {sp.name for sp in session.tracer.spans}
        assert "jgr.reduce" in names
        counters = session.tracer.metrics.snapshot()["counters"]
        assert counters["jgr.rounds"] >= 1


# ----------------------------------------------------------------------
# exporters
# ----------------------------------------------------------------------
class TestExporters:
    def test_jsonl_round_trip_is_loss_free(self, fig1_query):
        session = traced_session()
        session.optimize(fig1_query)
        text = to_jsonl(session.tracer)
        rebuilt = spans_from_jsonl(text)
        original = session.tracer.finished_spans()
        assert [sp.to_dict() for sp in rebuilt] == [
            sp.to_dict() for sp in original
        ]

    def test_chrome_trace_validates_and_is_json_serializable(self, fig1_query):
        session = traced_session()
        session.optimize(fig1_query)
        data = to_chrome_trace(session.tracer)
        assert validate_chrome_trace(data) == []
        encoded = json.loads(json.dumps(data))
        assert validate_chrome_trace(encoded) == []
        names = {e["name"] for e in encoded["traceEvents"] if e["ph"] == "X"}
        assert "optimize" in names
        assert "optimizer.plans_considered" in (
            encoded["otherData"]["metrics"]["counters"]
        )

    def test_chrome_trace_validator_rejects_malformed_events(self):
        assert validate_chrome_trace([]) != []
        assert validate_chrome_trace({"traceEvents": [{"ph": "X"}]}) != []
        bad_dur = {
            "traceEvents": [
                {"ph": "X", "name": "x", "pid": 1, "tid": 1, "ts": 0, "dur": -1}
            ]
        }
        assert any("dur" in p for p in validate_chrome_trace(bad_dur))

    def test_flame_summary_renders_the_span_tree(self, fig1_query):
        session = traced_session()
        session.optimize(fig1_query)
        text = flame_summary(session.tracer)
        assert "optimize" in text
        assert "100.0%" in text


# ----------------------------------------------------------------------
# parallel worker-trace merge
# ----------------------------------------------------------------------
class TestParallelMerge:
    @pytest.fixture
    def parallel_session(self, fig1_query):
        session = traced_session(algorithm="td-cmd", jobs=2)
        session.optimize(fig1_query)
        return session

    def test_worker_spans_land_on_worker_tracks(self, parallel_session):
        tracer = parallel_session.tracer
        tracks = {sp.track for sp in tracer.spans}
        assert {"main", "worker-0", "worker-1"} <= tracks
        assert validate_span_tree(tracer.spans) == []

    def test_worker_roots_parent_under_the_parallel_span(self, parallel_session):
        tracer = parallel_session.tracer
        (parallel_span,) = [
            sp for sp in tracer.spans if sp.name == "parallel.search"
        ]
        worker_roots = [sp for sp in tracer.spans if sp.name == "worker"]
        assert len(worker_roots) == 2
        assert all(sp.parent_id == parallel_span.span_id for sp in worker_roots)

    def test_merge_is_deterministic(self, fig1_query):
        def shape(session):
            return [
                (sp.name, sp.track, sp.parent_id, sp.span_id)
                for sp in session.tracer.spans
            ]

        first = traced_session(algorithm="td-cmd", jobs=2)
        first.optimize(fig1_query)
        second = traced_session(algorithm="td-cmd", jobs=2)
        second.optimize(fig1_query)
        assert shape(first) == shape(second)
        assert len({sp.span_id for sp in first.tracer.spans}) == len(
            first.tracer.spans
        )


# ----------------------------------------------------------------------
# the legacy shim
# ----------------------------------------------------------------------
class TestDeprecationShim:
    def test_session_state_kwargs_warn_exactly_once(self, fig1_query):
        optimizer_module._shim_warned = False
        try:
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                optimize(fig1_query, plan_cache=PlanCache())
                optimize(fig1_query, plan_cache=PlanCache())
            deprecations = [
                w for w in caught if issubclass(w.category, DeprecationWarning)
            ]
            assert len(deprecations) == 1
            assert "Optimizer" in str(deprecations[0].message)
        finally:
            optimizer_module._shim_warned = False

    def test_plain_calls_do_not_warn(self, fig1_query):
        optimizer_module._shim_warned = False
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            optimize(fig1_query, algorithm="td-cmdp", seed=1)
        assert not [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]


# ----------------------------------------------------------------------
# counter reconciliation (the satellite property test)
# ----------------------------------------------------------------------
class TestCounterReconciliation:
    @pytest.mark.parametrize("algorithm", ["td-cmd", "td-cmdp", "td-auto"])
    def test_optimizer_counters_match_enumeration_stats(
        self, fig1_query, algorithm
    ):
        session = traced_session(algorithm=algorithm)
        result = session.optimize(fig1_query)
        counters = session.tracer.metrics.snapshot()["counters"]
        for name, value in result.stats.summary().items():
            assert counters[f"optimizer.{name}"] == value

    @pytest.mark.parametrize("engine", ["reference", "columnar"])
    def test_engine_counters_match_execution_metrics(self, toy_dataset, engine):
        query = parse_query(
            """
            PREFIX e: <http://e/>
            SELECT * WHERE {
              ?a e:knows ?b .
              ?b e:worksFor ?o .
              ?a e:type ?t .
            }
            """,
            name="toy",
        )
        method = HashSubjectObject()
        session = traced_session(
            dataset=toy_dataset, partitioning=method
        )
        result = session.optimize(query)
        cluster = Cluster.build(toy_dataset, method, cluster_size=4)
        executor = Executor(
            cluster, fault_injector=FaultInjector(0.3, seed=5), engine=engine
        )
        with session.tracing():
            _, metrics = executor.execute(result.plan, query)
        counters = session.tracer.metrics.snapshot()["counters"]
        assert counters["engine.tuples_read"] == metrics.total_tuples_read
        assert counters["engine.tuples_shipped"] == metrics.total_tuples_shipped
        assert (
            counters["engine.tuples_produced"] == metrics.total_tuples_produced
        )
        assert counters["engine.retries"] == metrics.total_retries
        assert (
            counters["engine.faults_injected"] == metrics.total_faults_injected
        )
        # the executor's span attributes carry the same per-operator counts
        operator_spans = [
            sp
            for sp in session.tracer.spans
            if sp.name in ("scan", "join") and "operator" in sp.attributes
        ]
        assert len(operator_spans) == len(metrics.operators)
        assert sum(
            sp.attributes["tuples_produced"] for sp in operator_spans
        ) == metrics.total_tuples_produced
