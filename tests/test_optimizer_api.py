"""Tests for the public optimize() facade and package exports."""

import pytest

import repro
from repro import optimize, parse_query
from repro.core import ALGORITHMS, OptimizationResult
from repro.core.plans import validate_plan
from repro.partitioning import HashSubjectObject
from repro.rdf import Dataset, triple
from repro.workloads import generate_lubm, lubm_query


class TestFacade:
    def test_all_registered_algorithms_run(self, fig1_query):
        for name in ALGORITHMS:
            result = optimize(fig1_query, algorithm=name, seed=7)
            assert isinstance(result, OptimizationResult)
            validate_plan(result.plan)

    def test_algorithm_case_insensitive(self, fig1_query):
        assert optimize(fig1_query, algorithm="TD-CMD").algorithm == "TD-CMD"

    def test_unknown_algorithm_rejected(self, fig1_query):
        with pytest.raises(ValueError):
            optimize(fig1_query, algorithm="quantum")

    def test_seed_reproducible(self, fig1_query):
        a = optimize(fig1_query, seed=3)
        b = optimize(fig1_query, seed=3)
        assert a.cost == b.cost

    def test_dataset_statistics_path(self):
        ds = Dataset.from_triples(
            [
                triple("http://e/a", "http://e/p", "http://e/b"),
                triple("http://e/b", "http://e/q", "http://e/c"),
            ]
        )
        q = parse_query("SELECT * WHERE { ?x <http://e/p> ?y . ?y <http://e/q> ?z . }")
        result = optimize(q, dataset=ds)
        assert result.cost >= 0

    def test_partitioning_changes_plans(self):
        """A hash-local star query should use a local join."""
        q = parse_query(
            """
            SELECT * WHERE {
              ?x <http://e/p> ?a .
              ?x <http://e/q> ?b .
              ?x <http://e/r> ?c .
            }
            """
        )
        with_part = optimize(q, partitioning=HashSubjectObject(), seed=1)
        without = optimize(q, partitioning=None, seed=1)
        assert with_part.cost <= without.cost

    def test_result_carries_timing_and_stats(self, fig1_query):
        result = optimize(fig1_query, seed=0)
        assert result.elapsed_seconds >= 0
        assert result.stats.plans_considered > 0


class TestPackageSurface:
    def test_version(self):
        assert repro.__version__

    def test_lubm_end_to_end_via_public_api(self):
        """The README quickstart flow, as a test."""
        dataset = generate_lubm()
        query = lubm_query("L4")
        result = optimize(
            query,
            algorithm="td-auto",
            dataset=dataset,
            partitioning=HashSubjectObject(),
        )
        assert result.plan.pattern_count == len(query)
