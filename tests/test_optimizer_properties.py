"""Hypothesis properties across the optimizer family.

The dominance lattice the paper relies on, checked on random queries:

* TD-CMD ≤ every other algorithm (it explores a superset),
* TD-CMDP ≤ TriAD-DP (binary space ⊂ TD-CMDP space) when neither
  exploits locality differently (no partitioning),
* all plans are structurally valid and cover every pattern.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.baselines import TriADOptimizer
from repro.core import (
    PrunedTopDownEnumerator,
    ReductionOptimizer,
    TopDownEnumerator,
)
from repro.core.optimizer import make_builder
from repro.core.plans import validate_plan
from repro.core.join_graph import QueryShape
from repro.workloads.generators import generate_query

_SHAPES = [QueryShape.CHAIN, QueryShape.CYCLE, QueryShape.TREE, QueryShape.DENSE]
_MINIMUM = {
    QueryShape.CHAIN: 2,
    QueryShape.CYCLE: 3,
    QueryShape.TREE: 2,
    QueryShape.DENSE: 4,
}


@st.composite
def small_problem(draw):
    shape = draw(st.sampled_from(_SHAPES))
    size = draw(st.integers(min_value=_MINIMUM[shape], max_value=7))
    seed = draw(st.integers(min_value=0, max_value=5000))
    query = generate_query(shape, size, random.Random(seed))
    return make_builder(query, seed=seed)


@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(small_problem())
def test_tdcmd_dominates_all_variants(builder):
    best = TopDownEnumerator(builder.join_graph, builder).optimize()
    for cls in (PrunedTopDownEnumerator, ReductionOptimizer, TriADOptimizer):
        other = cls(builder.join_graph, builder).optimize()
        validate_plan(other.plan, builder.join_graph.full)
        assert best.cost <= other.cost * (1 + 1e-9), cls.__name__


@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(small_problem())
def test_tdcmdp_dominates_binary_only(builder):
    pruned = PrunedTopDownEnumerator(builder.join_graph, builder).optimize()
    binary = TriADOptimizer(builder.join_graph, builder).optimize()
    assert pruned.cost <= binary.cost * (1 + 1e-9)


@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(small_problem())
def test_plans_cover_query_and_validate(builder):
    for cls in (TopDownEnumerator, PrunedTopDownEnumerator, ReductionOptimizer):
        result = cls(builder.join_graph, builder).optimize()
        validate_plan(result.plan, builder.join_graph.full)
        assert result.plan.pattern_count == builder.join_graph.size
        assert result.cost >= 0.0
