"""Tests for the process-pool parallel plan search (core.parallel).

The contract under test is *equivalence*: the parallel paths must
return bit-identical plan costs — and, for everything except
``memo_hits``, bit-identical enumeration counters — to the serial
optimizer, for every algorithm and seed.
"""

import random

import pytest

from repro.core import (
    CartesianProductError,
    PARALLELIZABLE_ALGORITHMS,
    StatisticsCatalog,
    default_jobs,
    optimize,
    optimize_many,
    optimize_query_parallel,
)
from repro.core.plan_cache import PlanCache
from repro.partitioning import HashSubjectObject, PathBMC
from repro.sparql import parse_query
from repro.workloads.generators import (
    chain_query,
    cycle_query,
    dense_query,
    star_query,
    tree_query,
)

ALL_ALGORITHMS = ["td-cmd", "td-cmdp", "hgr-td-cmd", "td-auto"]


def small_batch():
    """A shape-diverse batch, small enough to optimize in milliseconds."""
    return [
        chain_query(5),
        cycle_query(5),
        star_query(4),
        tree_query(6, random.Random(1)),
        dense_query(6, random.Random(2)),
    ]


class TestOptimizeMany:
    @pytest.mark.parametrize("algorithm", ALL_ALGORITHMS)
    @pytest.mark.parametrize("seed", [0, 7, 2017])
    def test_matches_serial_exactly(self, algorithm, seed):
        """Pooled batch results == serial results, per query, bit for bit."""
        queries = small_batch()
        serial = [optimize(q, algorithm=algorithm, seed=seed) for q in queries]
        batch = optimize_many(queries, algorithm=algorithm, jobs=2, seed=seed)
        assert len(batch) == len(serial)
        for expected, got in zip(serial, batch):
            assert got.cost == expected.cost
            assert got.stats.plans_considered == expected.stats.plans_considered
            assert got.plan.describe() == expected.plan.describe()

    def test_preserves_input_order(self):
        queries = small_batch()
        results = optimize_many(queries, algorithm="td-cmd", jobs=2)
        for query, result in zip(queries, results):
            serial = optimize(query, algorithm="td-cmd")
            assert result.cost == serial.cost

    def test_accepts_tuples_and_workload_records(self):
        """Queries, (query, stats) pairs, and workload records all work."""
        query = chain_query(4)
        stats = StatisticsCatalog.from_random(query, random.Random(5))

        class Record:
            """Anything exposing .query/.statistics (e.g. WorkloadQuery)."""

            def __init__(self, query, statistics):
                self.query = query
                self.statistics = statistics

        items = [query, (query, stats), Record(query, stats)]
        results = optimize_many(items, algorithm="td-cmd", jobs=1)
        assert len(results) == 3
        # items 1 and 2 share explicit statistics -> identical plans
        assert results[1].cost == results[2].cost

    def test_rejects_garbage_items(self):
        with pytest.raises(TypeError):
            optimize_many([42], jobs=1)

    def test_jobs_one_skips_the_pool(self):
        queries = small_batch()[:2]
        results = optimize_many(queries, algorithm="td-cmdp", jobs=1)
        for query, result in zip(queries, results):
            assert result.cost == optimize(query, algorithm="td-cmdp").cost

    def test_plan_cache_short_circuits_repeats(self):
        queries = small_batch()[:3]
        cache = PlanCache()
        first = optimize_many(queries, algorithm="td-cmd", jobs=2, plan_cache=cache)
        assert cache.stats.misses == len(queries)
        assert cache.stats.stores == len(queries)
        second = optimize_many(queries, algorithm="td-cmd", jobs=2, plan_cache=cache)
        assert cache.stats.hits == len(queries)
        for cold, warm in zip(first, second):
            assert warm.cost == cold.cost
            assert warm.algorithm.endswith("+cache")


class TestIntraQueryParallel:
    @pytest.mark.parametrize("algorithm", PARALLELIZABLE_ALGORITHMS)
    @pytest.mark.parametrize("seed", [0, 3, 11])
    def test_matches_serial_exactly(self, algorithm, seed):
        """Sliced root search == serial search: cost and every counter
        except the traversal-dependent memo_hits."""
        query = tree_query(9, random.Random(seed))
        serial = optimize(query, algorithm=algorithm, seed=seed)
        parallel = optimize_query_parallel(
            query, algorithm=algorithm, jobs=3, seed=seed
        )
        assert parallel.cost == serial.cost
        assert parallel.plan.describe() == serial.plan.describe()
        assert parallel.stats.plans_considered == serial.stats.plans_considered
        assert (
            parallel.stats.divisions_enumerated
            == serial.stats.divisions_enumerated
        )
        assert (
            parallel.stats.subqueries_expanded == serial.stats.subqueries_expanded
        )

    def test_reports_worker_stats(self):
        query = cycle_query(7)
        result = optimize_query_parallel(query, algorithm="td-cmd", jobs=3)
        assert result.stats.workers == 3
        assert len(result.stats.per_worker_subqueries) == 3
        assert len(result.stats.per_worker_seconds) == 3
        assert all(n > 0 for n in result.stats.per_worker_subqueries)
        assert result.stats.speedup > 0.0
        assert "[parallel x3]" in result.algorithm

    def test_partitioned_search_matches_serial(self):
        """Local-query detection (Rule 2/3) survives the root slicing."""
        query = star_query(5)
        method = HashSubjectObject()
        serial = optimize(query, algorithm="td-cmdp", partitioning=method)
        parallel = optimize_query_parallel(
            query, algorithm="td-cmdp", jobs=2, partitioning=method
        )
        assert parallel.cost == serial.cost
        assert parallel.stats.plans_considered == serial.stats.plans_considered

    def test_rule3_short_circuit_falls_back_to_serial(self):
        """A root answered locally by Rule 3 has nothing to slice."""
        query = chain_query(3)
        method = PathBMC()  # chains are local under path partitioning
        result = optimize_query_parallel(
            query, algorithm="td-cmdp", jobs=4, partitioning=method
        )
        serial = optimize(query, algorithm="td-cmdp", partitioning=method)
        assert result.cost == serial.cost
        assert result.stats.workers == 1
        assert "[parallel" not in result.algorithm

    def test_jobs_capped_by_root_division_count(self):
        """More workers than root divisions must not crash or distort."""
        query = chain_query(3)  # tiny root division space
        serial = optimize(query, algorithm="td-cmd")
        result = optimize_query_parallel(query, algorithm="td-cmd", jobs=64)
        assert result.cost == serial.cost
        assert result.stats.plans_considered == serial.stats.plans_considered

    def test_jobs_one_is_plain_serial(self):
        query = cycle_query(5)
        result = optimize_query_parallel(query, algorithm="td-cmd", jobs=1)
        assert result.stats.workers == 1
        assert "[parallel" not in result.algorithm

    def test_unsupported_algorithm_rejected(self):
        query = chain_query(4)
        with pytest.raises(ValueError):
            optimize_query_parallel(query, algorithm="hgr-td-cmd", jobs=2)

    def test_disconnected_query_rejected(self):
        query = parse_query(
            "SELECT * WHERE { ?a <http://e/p> ?b . ?c <http://e/q> ?d . }"
        )
        with pytest.raises(CartesianProductError):
            optimize_query_parallel(query, algorithm="td-cmd", jobs=2)


class TestOptimizeEntryPoint:
    def test_jobs_routes_parallelizable_algorithms(self):
        query = cycle_query(6)
        serial = optimize(query, algorithm="td-cmd")
        parallel = optimize(query, algorithm="td-cmd", jobs=2)
        assert "[parallel x2]" in parallel.algorithm
        assert parallel.cost == serial.cost

    def test_jobs_ignored_for_serial_only_algorithms(self):
        query = cycle_query(6)
        result = optimize(query, algorithm="hgr-td-cmd", jobs=4)
        assert "[parallel" not in result.algorithm
        assert result.cost == optimize(query, algorithm="hgr-td-cmd").cost

    def test_default_jobs_is_positive(self):
        assert default_jobs() >= 1
