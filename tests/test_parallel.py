"""Tests for the process-pool parallel plan search (core.parallel).

The contract under test is *equivalence*: the parallel paths — both
``memo-shard`` and ``root-slice`` strategies — must return
bit-identical plan costs (and, for everything except ``memo_hits``
under root-slice, bit-identical enumeration counters) to the serial
optimizer, for every algorithm and seed.
"""

import random

import pytest

from repro.core import (
    CartesianProductError,
    PARALLELIZABLE_ALGORITHMS,
    PARALLEL_STRATEGIES,
    StatisticsCatalog,
    default_jobs,
    optimize,
    optimize_many,
    optimize_query_parallel,
)
from repro.core.parallel import _PAYLOAD_SCHEMA_VERSION, _merge_worker_stats
from repro.core.plan_cache import PlanCache
from repro.partitioning import HashSubjectObject, PathBMC
from repro.sparql import parse_query
from repro.workloads.generators import (
    chain_query,
    cycle_query,
    dense_query,
    star_query,
    tree_query,
)

ALL_ALGORITHMS = ["td-cmd", "td-cmdp", "hgr-td-cmd", "td-auto"]


def small_batch():
    """A shape-diverse batch, small enough to optimize in milliseconds."""
    return [
        chain_query(5),
        cycle_query(5),
        star_query(4),
        tree_query(6, random.Random(1)),
        dense_query(6, random.Random(2)),
    ]


class TestOptimizeMany:
    @pytest.mark.parametrize("algorithm", ALL_ALGORITHMS)
    @pytest.mark.parametrize("seed", [0, 7, 2017])
    def test_matches_serial_exactly(self, algorithm, seed):
        """Pooled batch results == serial results, per query, bit for bit."""
        queries = small_batch()
        serial = [optimize(q, algorithm=algorithm, seed=seed) for q in queries]
        batch = optimize_many(queries, algorithm=algorithm, jobs=2, seed=seed)
        assert len(batch) == len(serial)
        for expected, got in zip(serial, batch):
            assert got.cost == expected.cost
            assert got.stats.plans_considered == expected.stats.plans_considered
            assert got.plan.describe() == expected.plan.describe()

    def test_preserves_input_order(self):
        queries = small_batch()
        results = optimize_many(queries, algorithm="td-cmd", jobs=2)
        for query, result in zip(queries, results):
            serial = optimize(query, algorithm="td-cmd")
            assert result.cost == serial.cost

    def test_accepts_tuples_and_workload_records(self):
        """Queries, (query, stats) pairs, and workload records all work."""
        query = chain_query(4)
        stats = StatisticsCatalog.from_random(query, random.Random(5))

        class Record:
            """Anything exposing .query/.statistics (e.g. WorkloadQuery)."""

            def __init__(self, query, statistics):
                self.query = query
                self.statistics = statistics

        items = [query, (query, stats), Record(query, stats)]
        results = optimize_many(items, algorithm="td-cmd", jobs=1)
        assert len(results) == 3
        # items 1 and 2 share explicit statistics -> identical plans
        assert results[1].cost == results[2].cost

    def test_rejects_garbage_items(self):
        with pytest.raises(TypeError):
            optimize_many([42], jobs=1)

    def test_jobs_one_skips_the_pool(self):
        queries = small_batch()[:2]
        results = optimize_many(queries, algorithm="td-cmdp", jobs=1)
        for query, result in zip(queries, results):
            assert result.cost == optimize(query, algorithm="td-cmdp").cost

    def test_plan_cache_short_circuits_repeats(self):
        queries = small_batch()[:3]
        cache = PlanCache()
        first = optimize_many(queries, algorithm="td-cmd", jobs=2, plan_cache=cache)
        assert cache.stats.misses == len(queries)
        assert cache.stats.stores == len(queries)
        second = optimize_many(queries, algorithm="td-cmd", jobs=2, plan_cache=cache)
        assert cache.stats.hits == len(queries)
        for cold, warm in zip(first, second):
            assert warm.cost == cold.cost
            assert warm.algorithm.endswith("+cache")


class TestIntraQueryParallel:
    @pytest.mark.parametrize("strategy", PARALLEL_STRATEGIES)
    @pytest.mark.parametrize("algorithm", PARALLELIZABLE_ALGORITHMS)
    @pytest.mark.parametrize("seed", [0, 3, 11])
    def test_matches_serial_exactly(self, strategy, algorithm, seed):
        """Parallel search == serial search under both strategies: cost
        and every counter except the traversal-dependent memo_hits."""
        query = tree_query(9, random.Random(seed))
        serial = optimize(query, algorithm=algorithm, seed=seed)
        parallel = optimize_query_parallel(
            query, algorithm=algorithm, jobs=3, seed=seed, strategy=strategy
        )
        assert parallel.cost == serial.cost
        assert parallel.plan.describe() == serial.plan.describe()
        assert parallel.stats.plans_considered == serial.stats.plans_considered
        assert (
            parallel.stats.divisions_enumerated
            == serial.stats.divisions_enumerated
        )
        assert (
            parallel.stats.subqueries_expanded == serial.stats.subqueries_expanded
        )

    @pytest.mark.parametrize("strategy", PARALLEL_STRATEGIES)
    def test_reports_worker_stats(self, strategy):
        query = cycle_query(7)
        result = optimize_query_parallel(
            query, algorithm="td-cmd", jobs=3, strategy=strategy
        )
        assert result.stats.workers == 3
        assert len(result.stats.per_worker_subqueries) == 3
        assert len(result.stats.per_worker_seconds) == 3
        assert all(n > 0 for n in result.stats.per_worker_subqueries)
        assert result.stats.speedup > 0.0
        assert 0.0 < result.stats.worker_balance <= 1.0
        assert result.stats.steals >= 0
        assert "[parallel x3]" in result.algorithm

    def test_worker_balance_and_steals_in_summary(self):
        """The skew metrics reach summary() for multi-worker runs."""
        query = cycle_query(7)
        result = optimize_query_parallel(query, algorithm="td-cmd", jobs=3)
        summary = result.stats.summary()
        assert "worker_balance" in summary
        assert "steals" in summary
        assert summary["worker_balance"] == result.stats.worker_balance
        serial = optimize(query, algorithm="td-cmd")
        assert "worker_balance" not in serial.stats.summary()

    @pytest.mark.parametrize("strategy", PARALLEL_STRATEGIES)
    def test_partitioned_search_matches_serial(self, strategy):
        """Local-query detection (Rule 2/3) survives the parallel split."""
        query = star_query(5)
        method = HashSubjectObject()
        serial = optimize(query, algorithm="td-cmdp", partitioning=method)
        parallel = optimize_query_parallel(
            query, algorithm="td-cmdp", jobs=2, partitioning=method,
            strategy=strategy,
        )
        assert parallel.cost == serial.cost
        assert parallel.plan.describe() == serial.plan.describe()

    def test_root_slice_partitioned_counters_match_serial(self):
        """Root-slice additionally reproduces the serial counters under
        partitioning (memo-shard tiers are a documented superset there)."""
        query = star_query(5)
        method = HashSubjectObject()
        serial = optimize(query, algorithm="td-cmdp", partitioning=method)
        parallel = optimize_query_parallel(
            query, algorithm="td-cmdp", jobs=2, partitioning=method,
            strategy="root-slice",
        )
        assert parallel.stats.plans_considered == serial.stats.plans_considered

    @pytest.mark.parametrize("strategy", PARALLEL_STRATEGIES)
    def test_rule3_short_circuit_falls_back_to_serial(self, strategy):
        """A root answered locally by Rule 3 has nothing to parallelize."""
        query = chain_query(3)
        method = PathBMC()  # chains are local under path partitioning
        result = optimize_query_parallel(
            query, algorithm="td-cmdp", jobs=4, partitioning=method,
            strategy=strategy,
        )
        serial = optimize(query, algorithm="td-cmdp", partitioning=method)
        assert result.cost == serial.cost
        assert result.stats.workers == 1
        assert "[parallel" not in result.algorithm

    @pytest.mark.parametrize("strategy", PARALLEL_STRATEGIES)
    def test_jobs_capped_by_search_space(self, strategy):
        """More workers than the space supports must not crash or distort."""
        query = chain_query(3)  # tiny search space
        serial = optimize(query, algorithm="td-cmd")
        result = optimize_query_parallel(
            query, algorithm="td-cmd", jobs=64, strategy=strategy
        )
        assert result.cost == serial.cost
        assert result.stats.plans_considered == serial.stats.plans_considered

    @pytest.mark.parametrize("strategy", PARALLEL_STRATEGIES)
    def test_jobs_one_is_plain_serial(self, strategy):
        query = cycle_query(5)
        result = optimize_query_parallel(
            query, algorithm="td-cmd", jobs=1, strategy=strategy
        )
        assert result.stats.workers == 1
        assert "[parallel" not in result.algorithm

    def test_unsupported_algorithm_rejected(self):
        query = chain_query(4)
        with pytest.raises(ValueError):
            optimize_query_parallel(query, algorithm="hgr-td-cmd", jobs=2)

    def test_unknown_strategy_rejected(self):
        query = chain_query(4)
        with pytest.raises(ValueError, match="parallel strategy"):
            optimize_query_parallel(
                query, algorithm="td-cmd", jobs=2, strategy="magic"
            )

    def test_disconnected_query_rejected(self):
        query = parse_query(
            "SELECT * WHERE { ?a <http://e/p> ?b . ?c <http://e/q> ?d . }"
        )
        with pytest.raises(CartesianProductError):
            optimize_query_parallel(query, algorithm="td-cmd", jobs=2)


class TestMergeWorkerStats:
    """The pool-startup exclusion in the merged speedup (regression)."""

    @staticmethod
    def _outcome(elapsed, subqueries=5):
        from repro.core.enumeration import SubqueryRecord

        return {
            "schema": _PAYLOAD_SCHEMA_VERSION,
            "records": {},
            "root_record": SubqueryRecord(),
            "memo_hits": 0,
            "subqueries": subqueries,
            "elapsed": elapsed,
        }

    def test_schema_mismatch_refuses_to_merge(self):
        """A worker built from different code must abort the merge with
        a clear error, not silently skew the counters."""
        outcomes = [self._outcome(0.1), self._outcome(0.1)]
        outcomes[1]["schema"] = _PAYLOAD_SCHEMA_VERSION + 1
        with pytest.raises(RuntimeError, match="schema mismatch"):
            _merge_worker_stats(outcomes, root_is_local=False, wall_seconds=1.0)

    def test_missing_schema_stamp_refuses_to_merge(self):
        """Outcomes from pre-versioning workers carry no stamp at all —
        that is also a mismatch, not a pass."""
        outcome = self._outcome(0.1)
        del outcome["schema"]
        with pytest.raises(RuntimeError, match="schema mismatch"):
            _merge_worker_stats([outcome], root_is_local=False, wall_seconds=1.0)

    def test_speedup_excludes_pool_startup(self):
        """2 workers busy 0.25 s each over a 2 s wall of which 1.5 s was
        pool spin-up: speedup must be 0.5/0.5 = 1.0, not 0.5/2.0."""
        outcomes = [self._outcome(0.25), self._outcome(0.25)]
        stats = _merge_worker_stats(
            outcomes, root_is_local=False, wall_seconds=2.0, startup_seconds=1.5
        )
        assert stats.pool_startup_seconds == pytest.approx(1.5)
        assert stats.speedup == pytest.approx(1.0)

    def test_startup_clamped_to_wall(self):
        """A bogus startup beyond the wall must not produce a negative
        or infinite speedup."""
        outcomes = [self._outcome(0.1)]
        stats = _merge_worker_stats(
            outcomes, root_is_local=False, wall_seconds=0.5, startup_seconds=9.0
        )
        assert stats.pool_startup_seconds == pytest.approx(0.5)
        assert stats.speedup == 0.0

    def test_zero_startup_matches_old_behavior(self):
        outcomes = [self._outcome(1.0), self._outcome(1.0)]
        stats = _merge_worker_stats(outcomes, root_is_local=False, wall_seconds=1.0)
        assert stats.pool_startup_seconds == 0.0
        assert stats.speedup == pytest.approx(2.0)
        assert stats.worker_balance == pytest.approx(1.0)


class TestOptimizeEntryPoint:
    def test_jobs_routes_parallelizable_algorithms(self):
        query = cycle_query(6)
        serial = optimize(query, algorithm="td-cmd")
        parallel = optimize(query, algorithm="td-cmd", jobs=2)
        assert "[parallel x2]" in parallel.algorithm
        assert parallel.cost == serial.cost

    def test_jobs_ignored_for_serial_only_algorithms(self):
        query = cycle_query(6)
        result = optimize(query, algorithm="hgr-td-cmd", jobs=4)
        assert "[parallel" not in result.algorithm
        assert result.cost == optimize(query, algorithm="hgr-td-cmd").cost

    def test_default_jobs_is_positive(self):
        assert default_jobs() >= 1

    def test_default_jobs_honors_env_override(self, monkeypatch):
        """REPRO_JOBS pins the worker default for CI determinism."""
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert default_jobs() == 3
        monkeypatch.setenv("REPRO_JOBS", "0")
        assert default_jobs() == 1  # clamped to at least one worker
        monkeypatch.setenv("REPRO_JOBS", "many")
        with pytest.raises(ValueError, match="REPRO_JOBS"):
            default_jobs()
        monkeypatch.delenv("REPRO_JOBS")
        assert default_jobs() >= 1
