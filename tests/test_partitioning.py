"""Tests for the generic partitioning model and the four methods."""

import pytest

from repro.partitioning import (
    HashSubjectObject,
    PathBMC,
    SemanticHash,
    UndirectedOneHop,
    greedy_edge_cut_partition,
    hash_term,
)
from repro.rdf import Dataset, IRI, RDFGraph, triple

ALL_METHODS = [HashSubjectObject(), SemanticHash(2), PathBMC(), UndirectedOneHop()]


def small_dataset():
    triples = [
        triple("http://e/a", "http://e/p", "http://e/b"),
        triple("http://e/b", "http://e/p", "http://e/c"),
        triple("http://e/c", "http://e/p", "http://e/d"),
        triple("http://e/a", "http://e/q", "http://e/d"),
        triple("http://e/x", "http://e/q", "http://e/a"),
    ]
    return Dataset.from_triples(triples)


class TestGenericModel:
    @pytest.mark.parametrize("method", ALL_METHODS, ids=lambda m: m.name)
    def test_no_triple_lost(self, method):
        """Every triple must end up on at least one node (Eq. 1+2 totality)."""
        ds = small_dataset()
        partitioning = method.partition(ds, cluster_size=3)
        stored = set()
        for graph in partitioning.node_graphs:
            stored.update(graph)
        assert stored == set(ds.graph)

    @pytest.mark.parametrize("method", ALL_METHODS, ids=lambda m: m.name)
    def test_cluster_size_respected(self, method):
        partitioning = method.partition(small_dataset(), cluster_size=4)
        assert partitioning.cluster_size == 4
        assert all(0 <= n < 4 for n in partitioning.vertex_placement.values())

    @pytest.mark.parametrize("method", ALL_METHODS, ids=lambda m: m.name)
    def test_replication_factor_at_least_one(self, method):
        ds = small_dataset()
        partitioning = method.partition(ds, cluster_size=3)
        assert partitioning.replication_factor(ds.triple_count) >= 1.0

    def test_invalid_cluster_size(self):
        with pytest.raises(ValueError):
            HashSubjectObject().partition(small_dataset(), 0)

    def test_imbalance_of_single_node_is_one(self):
        partitioning = HashSubjectObject().partition(small_dataset(), 1)
        assert partitioning.imbalance() == 1.0


class TestHashSO:
    def test_triple_on_subject_and_object_nodes(self):
        ds = small_dataset()
        partitioning = HashSubjectObject().partition(ds, cluster_size=3)
        t = triple("http://e/a", "http://e/p", "http://e/b")
        expected_nodes = {
            hash_term(IRI("http://e/a"), 3),
            hash_term(IRI("http://e/b"), 3),
        }
        holding = {i for i, g in enumerate(partitioning.node_graphs) if t in g}
        assert holding == expected_nodes

    def test_hash_is_deterministic(self):
        assert hash_term(IRI("http://e/a"), 7) == hash_term(IRI("http://e/a"), 7)


class TestSemanticHashData:
    def test_element_contains_two_hop_forward(self):
        ds = small_dataset()
        method = SemanticHash(2)
        element = method.combine(IRI("http://e/a"), ds.graph)
        values = {(t.subject.value, t.object.value) for t in element}
        # forward 2 hops from a: a->b, a->d, b->c
        assert ("http://e/a", "http://e/b") in values
        assert ("http://e/b", "http://e/c") in values
        assert ("http://e/c", "http://e/d") not in values

    def test_one_hop_variant(self):
        element = SemanticHash(1).combine(IRI("http://e/a"), small_dataset().graph)
        assert len(element) == 2  # a->b, a->d


class TestPathBMC:
    def test_anchors_are_start_vertices(self):
        ds = small_dataset()
        anchors = PathBMC().anchors(ds.graph)
        assert IRI("http://e/x") in anchors  # no incoming edges

    def test_combine_is_forward_reachability(self):
        ds = small_dataset()
        element = PathBMC().combine(IRI("http://e/x"), ds.graph)
        assert len(element) == 5  # x reaches everything

    def test_cyclic_graph_fully_covered(self):
        cyc = Dataset.from_triples(
            [
                triple("http://e/a", "http://e/p", "http://e/b"),
                triple("http://e/b", "http://e/p", "http://e/a"),
            ]
        )
        partitioning = PathBMC().partition(cyc, cluster_size=2)
        stored = set()
        for g in partitioning.node_graphs:
            stored.update(g)
        assert stored == set(cyc.graph)

    def test_distribute_balances_load(self):
        # many equal elements should spread across nodes
        triples = [
            triple(f"http://e/s{i}", "http://e/p", f"http://e/o{i}")
            for i in range(20)
        ]
        partitioning = PathBMC().partition(Dataset.from_triples(triples), 4)
        sizes = [len(g) for g in partitioning.node_graphs]
        assert max(sizes) - min(sizes) <= 1


class TestGreedyPartitioner:
    def test_balanced_parts(self):
        graph = RDFGraph(
            [
                triple(f"http://e/v{i}", "http://e/p", f"http://e/v{i + 1}")
                for i in range(20)
            ]
        )
        placement = greedy_edge_cut_partition(graph, 3)
        counts = [0, 0, 0]
        for node in placement.values():
            counts[node] += 1
        assert max(counts) - min(counts) <= max(1, len(placement) // 3)

    def test_neighbors_tend_to_colocate(self):
        # a chain should be cut at most (parts - 1) times
        graph = RDFGraph(
            [
                triple(f"http://e/v{i}", "http://e/p", f"http://e/v{i + 1}")
                for i in range(30)
            ]
        )
        placement = greedy_edge_cut_partition(graph, 3)
        cuts = sum(
            1
            for t in graph
            if placement[t.subject] != placement[t.object]
        )
        assert cuts <= 4

    def test_empty_graph(self):
        assert greedy_edge_cut_partition(RDFGraph(), 3) == {}
