"""Property-based tests for the partitioning model on random graphs."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.partitioning import (
    DynamicPartitioning,
    HashSubjectObject,
    PathBMC,
    SemanticHash,
    UndirectedOneHop,
)
from repro.rdf import Dataset, triple

METHOD_BUILDERS = [
    HashSubjectObject,
    lambda: SemanticHash(1),
    lambda: SemanticHash(2),
    PathBMC,
    UndirectedOneHop,
    lambda: DynamicPartitioning(HashSubjectObject(), []),
]


def random_dataset(seed: int, vertices: int, edges: int) -> Dataset:
    rng = random.Random(seed)
    triples = [
        triple(
            f"http://e/v{rng.randrange(vertices)}",
            f"http://e/p{rng.randrange(3)}",
            f"http://e/v{rng.randrange(vertices)}",
        )
        for _ in range(edges)
    ]
    return Dataset.from_triples(triples)


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    vertices=st.integers(min_value=2, max_value=40),
    edges=st.integers(min_value=1, max_value=120),
    cluster_size=st.integers(min_value=1, max_value=8),
    method_index=st.integers(min_value=0, max_value=len(METHOD_BUILDERS) - 1),
)
def test_partitioning_is_total_and_well_formed(
    seed, vertices, edges, cluster_size, method_index
):
    """For any graph, method, and cluster size: every triple lands on at
    least one node, placements are in range, and the bookkeeping holds."""
    dataset = random_dataset(seed, vertices, edges)
    method = METHOD_BUILDERS[method_index]()
    partitioning = method.partition(dataset, cluster_size)
    assert partitioning.cluster_size == cluster_size
    stored = set()
    for graph in partitioning.node_graphs:
        stored.update(graph)
    assert stored == set(dataset.graph)
    assert all(0 <= node < cluster_size for node in partitioning.vertex_placement.values())
    assert partitioning.replication_factor(dataset.triple_count) >= 1.0
    assert partitioning.imbalance() >= 1.0


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    hops=st.integers(min_value=1, max_value=3),
)
def test_semantic_hash_elements_nest(seed, hops):
    """(k+1)-hop elements contain k-hop elements at every anchor."""
    dataset = random_dataset(seed, 20, 50)
    smaller = SemanticHash(hops)
    larger = SemanticHash(hops + 1)
    for vertex in dataset.graph.vertices:
        assert smaller.combine(vertex, dataset.graph) <= larger.combine(
            vertex, dataset.graph
        )


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_path_bmc_elements_are_forward_closed(seed):
    """Every element is closed under forward reachability."""
    dataset = random_dataset(seed, 15, 40)
    method = PathBMC()
    for anchor in method.anchors(dataset.graph):
        element = method.combine(anchor, dataset.graph)
        subjects_in_element = {t.object for t in element}
        for vertex in subjects_in_element:
            for out in dataset.graph.out_edges(vertex):
                assert out in element
