"""The streaming pipelined engine and the engine registry protocol.

Covers the `Engine` protocol surface (registry views, spec lookup,
bring-your-own instances), the pipelined backend's chunked streaming
(boundary sweep, LIMIT pushdown, bounded buffering, first-row metric),
and mid-stream fail-stop recovery via the cluster layout epoch.
"""

import random

import pytest

from repro.core import StatisticsCatalog, optimize
from repro.core.governance import QueryAborted, QueryBudget
from repro.engine import (
    Cluster,
    ColumnarEngine,
    Engine,
    EngineSpec,
    Executor,
    PipelinedEngine,
    engine_spec,
    engine_specs,
    evaluate_reference,
    plan_depth,
    register_engine,
    resolve_engine,
)
from repro.engine.base import ENGINES
from repro.observability import runtime as obs
from repro.observability.spans import Tracer
from repro.partitioning import HashSubjectObject


def span_events(tracer, name):
    return [
        event
        for span in tracer.finished_spans()
        for event in span.events
        if event.name == name
    ]


@pytest.fixture
def planned(toy_dataset, toy_query):
    statistics = StatisticsCatalog.from_dataset(toy_query, toy_dataset)
    method = HashSubjectObject()
    result = optimize(toy_query, statistics=statistics, partitioning=method)
    cluster = Cluster.build(toy_dataset, method, cluster_size=3)
    return cluster, result.plan, toy_query


@pytest.fixture
def reference_rows(toy_dataset, toy_query):
    return evaluate_reference(toy_query, toy_dataset.graph)


# ----------------------------------------------------------------------
# registry protocol
# ----------------------------------------------------------------------
class TestEngineRegistry:
    def test_view_behaves_like_the_historical_tuple(self):
        assert "pipelined" in ENGINES
        assert "vectorized" not in ENGINES
        assert len(ENGINES) == 3
        assert ENGINES[0] == "reference"
        assert ENGINES == ("reference", "columnar", "pipelined")
        assert ENGINES == ["reference", "columnar", "pipelined"]
        assert repr(ENGINES) == "('reference', 'columnar', 'pipelined')"
        assert list(ENGINES) == ["reference", "columnar", "pipelined"]

    def test_specs_in_registration_order(self):
        specs = engine_specs()
        assert [spec.name for spec in specs] == list(ENGINES)
        by_name = {spec.name: spec for spec in specs}
        assert by_name["reference"].shuffle_factor == 1.0
        assert not by_name["reference"].encoded
        assert by_name["columnar"].encoded
        assert not by_name["columnar"].streaming
        assert by_name["pipelined"].streaming
        # encoded rows ship fixed-width ids: same discount as columnar
        assert (
            by_name["pipelined"].shuffle_factor
            == by_name["columnar"].shuffle_factor
        )

    def test_unknown_spec_raises_with_choices(self):
        with pytest.raises(ValueError, match="unknown engine 'vectorized'"):
            engine_spec("vectorized")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_engine(
                EngineSpec(
                    name="pipelined",
                    description="imposter",
                    factory=PipelinedEngine,
                )
            )

    def test_resolve_name_builds_fresh_instances(self):
        name, first = resolve_engine("pipelined")
        _, second = resolve_engine("pipelined")
        assert name == "pipelined"
        assert isinstance(first, PipelinedEngine)
        assert first is not second

    def test_resolve_instance_passes_through(self):
        instance = PipelinedEngine(chunk_size=4)
        name, resolved = resolve_engine(instance)
        assert name == "pipelined"
        assert resolved is instance

    def test_chunk_size_validated(self):
        with pytest.raises(ValueError, match="chunk_size"):
            PipelinedEngine(chunk_size=0)


class TestExecutorEngineAcceptance:
    def test_executor_accepts_engine_instance(self, planned, reference_rows):
        cluster, plan, query = planned
        executor = Executor(cluster, engine=PipelinedEngine(chunk_size=16))
        relation, metrics = executor.execute(plan, query)
        assert relation.rows == reference_rows.rows
        assert executor.engine == "pipelined"

    def test_executor_accepts_unregistered_instance(self, planned, reference_rows):
        class LocalEngine(ColumnarEngine):
            name = "bring-your-own"

        cluster, plan, query = planned
        executor = Executor(cluster, engine=LocalEngine())
        relation, _ = executor.execute(plan, query)
        assert executor.engine == "bring-your-own"
        assert relation.rows == reference_rows.rows

    def test_abstract_engine_cannot_instantiate(self):
        with pytest.raises(TypeError):
            Engine()


# ----------------------------------------------------------------------
# chunk boundaries and equivalence
# ----------------------------------------------------------------------
class TestChunkBoundaries:
    @pytest.mark.parametrize("chunk_size", [1, 2, 7, 64, 1024])
    def test_rows_identical_across_chunk_sizes(
        self, planned, reference_rows, chunk_size
    ):
        """Results must not depend on where chunk boundaries fall —
        including chunk_size=1 (a boundary after every row) and sizes
        larger than any intermediate (a single chunk per stream)."""
        cluster, plan, query = planned
        executor = Executor(
            cluster, engine=PipelinedEngine(chunk_size=chunk_size)
        )
        relation, metrics = executor.execute(plan, query)
        assert relation.variables == reference_rows.variables
        assert relation.rows == reference_rows.rows
        assert metrics.result_rows == len(reference_rows)

    def test_peak_buffered_rows_bounded_by_depth(self, planned):
        cluster, plan, query = planned
        for chunk_size in (1, 4, 32):
            executor = Executor(
                cluster, engine=PipelinedEngine(chunk_size=chunk_size)
            )
            _, metrics = executor.execute(plan, query)
            assert metrics.peak_buffered_rows > 0
            assert (
                metrics.peak_buffered_rows <= chunk_size * plan_depth(plan)
            )

    def test_operator_labels_match_columnar_postorder(self, planned):
        cluster, plan, query = planned
        _, streamed = Executor(cluster, engine="pipelined").execute(plan, query)
        _, materialized = Executor(cluster, engine="columnar").execute(
            plan, query
        )
        assert [op.operator for op in streamed.operators] == [
            op.operator for op in materialized.operators
        ]


# ----------------------------------------------------------------------
# LIMIT pushdown
# ----------------------------------------------------------------------
class TestLimitPushdown:
    def test_limit_stops_the_stream_early(self, planned, reference_rows):
        cluster, plan, query = planned
        executor = Executor(cluster, engine=PipelinedEngine(chunk_size=2))
        relation, metrics = executor.execute(plan, query, limit=3)
        assert len(relation) == 3
        assert relation.rows <= reference_rows.rows
        assert metrics.limit_pushdown
        assert metrics.result_rows == 3

    def test_limit_larger_than_result_returns_everything(
        self, planned, reference_rows
    ):
        cluster, plan, query = planned
        relation, metrics = Executor(cluster, engine="pipelined").execute(
            plan, query, limit=10_000
        )
        assert relation.rows == reference_rows.rows
        assert metrics.limit_pushdown

    def test_limit_zero_returns_no_rows(self, planned):
        cluster, plan, query = planned
        relation, _ = Executor(cluster, engine="pipelined").execute(
            plan, query, limit=0
        )
        assert len(relation) == 0

    def test_negative_limit_rejected(self, planned):
        cluster, plan, query = planned
        with pytest.raises(ValueError, match="limit"):
            Executor(cluster, engine="pipelined").execute(plan, query, limit=-1)

    def test_materialized_engines_post_truncate(self, planned, reference_rows):
        """Non-streaming engines honor the limit by deterministic
        truncation of the full result — no pushdown flag."""
        cluster, plan, query = planned
        kept = {}
        for engine in ("reference", "columnar"):
            relation, metrics = Executor(cluster, engine=engine).execute(
                plan, query, limit=3
            )
            assert len(relation) == 3
            assert relation.rows <= reference_rows.rows
            assert not metrics.limit_pushdown
            kept[engine] = relation.rows
        assert kept["reference"] == kept["columnar"]


# ----------------------------------------------------------------------
# first-row metric
# ----------------------------------------------------------------------
class TestFirstRow:
    def test_pipelined_first_row_precedes_wall_clock(self, planned):
        cluster, plan, query = planned
        tracer = Tracer()
        with obs.activate(tracer):
            _, metrics = Executor(cluster, engine="pipelined").execute(
                plan, query
            )
        assert metrics.first_row_seconds is not None
        assert 0 < metrics.first_row_seconds <= metrics.wall_seconds
        events = span_events(tracer, "executor.first_row")
        assert len(events) == 1
        assert events[0].attributes["engine"] == "pipelined"
        assert events[0].attributes["seconds"] == pytest.approx(
            metrics.first_row_seconds
        )

    def test_materialized_first_row_reconciles_to_wall(self, planned):
        """Materialized engines produce every row at once: first-row
        latency is defined as the full wall time so the metric is
        comparable across engines."""
        cluster, plan, query = planned
        for engine in ("reference", "columnar"):
            _, metrics = Executor(cluster, engine=engine).execute(plan, query)
            assert metrics.first_row_seconds == metrics.wall_seconds

    def test_summary_reports_first_row(self, planned):
        cluster, plan, query = planned
        _, metrics = Executor(cluster, engine="pipelined").execute(plan, query)
        assert "first_row_seconds" in metrics.summary()


# ----------------------------------------------------------------------
# governance: per-chunk polls and charges
# ----------------------------------------------------------------------
class TestStreamingGovernance:
    def test_row_budget_aborts_mid_stream(self, planned):
        cluster, plan, query = planned
        budget = QueryBudget(row_budget=5, query_id="streamed")
        executor = Executor(cluster, engine=PipelinedEngine(chunk_size=2))
        with pytest.raises(QueryAborted, match="row budget"):
            executor.execute(plan, query, budget=budget)
        # the breach happened at a chunk boundary, not after the fact
        assert budget.rows_charged > 5

    def test_generous_budget_charges_all_produced_rows(self, planned):
        cluster, plan, query = planned
        budget = QueryBudget(row_budget=1_000_000)
        _, metrics = Executor(cluster, engine="pipelined").execute(
            plan, query, budget=budget
        )
        produced = sum(op.tuples_produced for op in metrics.operators)
        assert budget.rows_charged == produced


# ----------------------------------------------------------------------
# fail-stop recovery
# ----------------------------------------------------------------------
class TestStreamRecovery:
    def test_mid_stream_fail_stop_restarts_scan(
        self, planned, reference_rows, monkeypatch
    ):
        """Kill a worker *while* a scan streams (between chunks): the
        layout epoch moves, the scan restarts on the degraded layout,
        and set semantics absorb the re-emitted prefix."""
        from repro.engine import pipelined as pipelined_module

        cluster, plan, query = planned
        original = pipelined_module.iter_pattern_rows
        state = {"fired": False}

        def sabotaged(fragment, pattern):
            for i, row in enumerate(original(fragment, pattern)):
                yield row
                if not state["fired"] and i == 0:
                    state["fired"] = True
                    cluster.fail_worker(0)

        monkeypatch.setattr(
            pipelined_module, "iter_pattern_rows", sabotaged
        )
        tracer = Tracer()
        with obs.activate(tracer):
            relation, _ = Executor(
                cluster, engine=PipelinedEngine(chunk_size=1)
            ).execute(plan, query)
        assert state["fired"]
        assert relation.rows == reference_rows.rows
        assert span_events(tracer, "executor.stream_restart")
