"""Tests for the cross-query plan cache (core.plan_cache)."""

import random

import pytest

from repro.core import StatisticsCatalog, optimize
from repro.core.cardinality import PatternStatistics
from repro.core.cost import CostParameters
from repro.core.plan_cache import PlanCache, canonical_variable_map, query_signature
from repro.core.plans import validate_plan
from repro.partitioning import HashSubjectObject
from repro.sparql import parse_query
from repro.workloads.generators import cycle_query, tree_query


@pytest.fixture
def query():
    return cycle_query(5)


@pytest.fixture
def statistics(query):
    return StatisticsCatalog.from_random(query, random.Random(0))


def perturbed(statistics):
    """A copy of *statistics* with one cardinality changed."""
    entries = list(statistics.per_pattern)
    entries[0] = PatternStatistics(
        cardinality=entries[0].cardinality + 1.0, bindings=entries[0].bindings
    )
    return StatisticsCatalog(statistics.query, entries)


class TestSignature:
    def test_stable_for_identical_calls(self, query, statistics):
        key1, _ = query_signature(query, statistics, "td-cmd")
        key2, _ = query_signature(query, statistics, "td-cmd")
        assert key1 == key2

    def test_changes_with_statistics_fingerprint(self, query, statistics):
        key1, _ = query_signature(query, statistics, "td-cmd")
        key2, _ = query_signature(query, perturbed(statistics), "td-cmd")
        assert key1 != key2

    def test_changes_with_algorithm(self, query, statistics):
        key1, _ = query_signature(query, statistics, "td-cmd")
        key2, _ = query_signature(query, statistics, "td-cmdp")
        assert key1 != key2

    def test_changes_with_cost_parameters(self, query, statistics):
        key1, _ = query_signature(query, statistics, "td-cmd")
        key2, _ = query_signature(
            query, statistics, "td-cmd", parameters=CostParameters(alpha=0.5)
        )
        assert key1 != key2

    def test_changes_with_partitioning(self, query, statistics):
        key1, _ = query_signature(query, statistics, "td-cmd")
        key2, _ = query_signature(
            query, statistics, "td-cmd", partitioning=HashSubjectObject()
        )
        assert key1 != key2

    def test_invariant_under_variable_renaming(self):
        """Alpha-equivalent queries collapse to one signature."""
        q1 = parse_query(
            "SELECT * WHERE { ?x <http://e/p> ?y . ?y <http://e/q> ?z . }"
        )
        q2 = parse_query(
            "SELECT * WHERE { ?left <http://e/p> ?mid . ?mid <http://e/q> ?right . }"
        )
        s1 = StatisticsCatalog.from_random(q1, random.Random(4))
        s2 = StatisticsCatalog.from_random(q2, random.Random(4))
        assert query_signature(q1, s1, "td-cmd")[0] == query_signature(
            q2, s2, "td-cmd"
        )[0]

    def test_canonical_map_follows_first_appearance(self):
        q = parse_query(
            "SELECT * WHERE { ?b <http://e/p> ?a . ?a <http://e/q> ?c . }"
        )
        assert canonical_variable_map(q) == {"b": "v0", "a": "v1", "c": "v2"}


class TestCacheBehavior:
    def test_hit_on_repeat(self, query, statistics):
        cache = PlanCache()
        first = optimize(query, algorithm="td-cmd", statistics=statistics,
                         plan_cache=cache)
        assert cache.stats.misses == 1 and cache.stats.stores == 1
        second = optimize(query, algorithm="td-cmd", statistics=statistics,
                          plan_cache=cache)
        assert cache.stats.hits == 1
        assert second.algorithm.endswith("+cache")
        assert second.cost == first.cost
        assert second.plan.describe() == first.plan.describe()
        # the replayed stats are the original enumeration's counters
        assert second.stats.plans_considered == first.stats.plans_considered

    def test_miss_on_changed_statistics(self, query, statistics):
        cache = PlanCache()
        optimize(query, algorithm="td-cmd", statistics=statistics, plan_cache=cache)
        optimize(
            query,
            algorithm="td-cmd",
            statistics=perturbed(statistics),
            plan_cache=cache,
        )
        assert cache.stats.hits == 0
        assert cache.stats.misses == 2
        assert len(cache) == 2

    def test_miss_on_different_algorithm(self, query, statistics):
        cache = PlanCache()
        optimize(query, algorithm="td-cmd", statistics=statistics, plan_cache=cache)
        optimize(query, algorithm="td-cmdp", statistics=statistics, plan_cache=cache)
        assert cache.stats.hits == 0 and len(cache) == 2

    def test_hit_across_variable_renaming(self):
        """A renamed repeat hits, and the replayed plan speaks the *new*
        query's variable names (rebuilt, not replayed verbatim)."""
        q1 = parse_query(
            "SELECT * WHERE { ?x <http://e/p> ?y . ?y <http://e/q> ?z . }",
            name="orig",
        )
        q2 = parse_query(
            "SELECT * WHERE { ?a <http://e/p> ?b . ?b <http://e/q> ?c . }",
            name="renamed",
        )
        s1 = StatisticsCatalog.from_random(q1, random.Random(4))
        s2 = StatisticsCatalog.from_random(q2, random.Random(4))
        cache = PlanCache()
        first = optimize(q1, algorithm="td-cmd", statistics=s1, plan_cache=cache)
        second = optimize(q2, algorithm="td-cmd", statistics=s2, plan_cache=cache)
        assert cache.stats.hits == 1
        assert second.cost == first.cost
        validate_plan(second.plan, (1 << len(q2)) - 1)
        join_names = {
            node.join_variable.name
            for node in second.plan.joins()
            if node.join_variable is not None
        }
        assert join_names <= {"a", "b", "c"}
        assert {leaf.pattern for leaf in second.plan.leaves()} == set(q2)

    def test_lru_eviction(self):
        cache = PlanCache(capacity=2)
        queries = [tree_query(n, random.Random(n)) for n in (4, 5, 6)]
        catalogs = [
            StatisticsCatalog.from_random(q, random.Random(i))
            for i, q in enumerate(queries)
        ]
        for q, s in zip(queries, catalogs):
            optimize(q, algorithm="td-cmd", statistics=s, plan_cache=cache)
        assert len(cache) == 2
        assert cache.stats.evictions == 1
        # the oldest entry is gone; the newer two still hit
        assert cache.lookup(queries[0], catalogs[0], "td-cmd") is None
        assert cache.lookup(queries[1], catalogs[1], "td-cmd") is not None
        assert cache.lookup(queries[2], catalogs[2], "td-cmd") is not None

    def test_lookup_refreshes_lru_order(self, query, statistics):
        cache = PlanCache(capacity=2)
        other = tree_query(5, random.Random(9))
        other_stats = StatisticsCatalog.from_random(other, random.Random(9))
        optimize(query, algorithm="td-cmd", statistics=statistics, plan_cache=cache)
        optimize(other, algorithm="td-cmd", statistics=other_stats, plan_cache=cache)
        # touch the older entry, then overflow: the untouched one is evicted
        assert cache.lookup(query, statistics, "td-cmd") is not None
        third = tree_query(6, random.Random(10))
        third_stats = StatisticsCatalog.from_random(third, random.Random(10))
        optimize(third, algorithm="td-cmd", statistics=third_stats, plan_cache=cache)
        assert cache.lookup(query, statistics, "td-cmd") is not None
        assert cache.lookup(other, other_stats, "td-cmd") is None

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            PlanCache(capacity=0)

    def test_counters_and_hit_rate(self, query, statistics):
        cache = PlanCache()
        optimize(query, algorithm="td-cmd", statistics=statistics, plan_cache=cache)
        optimize(query, algorithm="td-cmd", statistics=statistics, plan_cache=cache)
        assert cache.stats.lookups == 2
        assert cache.stats.hit_rate == pytest.approx(0.5)
        assert "PlanCache(" in repr(cache)


class TestPersistence:
    def test_save_load_round_trip(self, tmp_path, query, statistics):
        cache = PlanCache()
        first = optimize(query, algorithm="td-cmd", statistics=statistics,
                         plan_cache=cache)
        path = tmp_path / "cache.json"
        cache.save(path)
        reloaded = PlanCache.load(path)
        assert len(reloaded) == 1
        hit = reloaded.lookup(query, statistics, "td-cmd")
        assert hit is not None
        assert hit.cost == first.cost
        assert hit.plan.describe() == first.plan.describe()

    def test_load_with_smaller_capacity_evicts_oldest(self, tmp_path):
        cache = PlanCache()
        queries = [tree_query(n, random.Random(n)) for n in (4, 5)]
        for i, q in enumerate(queries):
            s = StatisticsCatalog.from_random(q, random.Random(i))
            optimize(q, algorithm="td-cmd", statistics=s, plan_cache=cache)
        path = tmp_path / "cache.json"
        cache.save(path)
        reloaded = PlanCache.load(path, capacity=1)
        assert len(reloaded) == 1
        s1 = StatisticsCatalog.from_random(queries[1], random.Random(1))
        assert reloaded.lookup(queries[1], s1, "td-cmd") is not None
