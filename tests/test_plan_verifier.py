"""Tests for the static plan verifier (analysis.plan_verifier).

Adversarial plans are hand-built with the raw ``JoinNode`` / ``ScanNode``
constructors, deliberately bypassing :class:`PlanBuilder` (which refuses
to build most of them) — each must raise its own *named* violation.  A
hypothesis property test then asserts the positive direction: every
algorithm x partitioner x seed combination emits verifier-clean plans.
"""

import dataclasses
import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.analysis import (
    ChildCoverageGap,
    CostMismatch,
    DisconnectedDivision,
    InvariantViolation,
    KAryBroadcast,
    MalformedPlanNode,
    NonCoLocatedLocalQuery,
    OverlappingChildBitsets,
    PlanVerifier,
    VariableBindingViolation,
    VerificationContext,
    profile_for_algorithm,
    verify_result,
)
from repro.core import StatisticsCatalog, optimize
from repro.core import bitset as bs
from repro.core.enumeration import InvariantProfile
from repro.core.plan_cache import PlanCache
from repro.core.plans import JoinAlgorithm, JoinNode, ScanNode
from repro.partitioning import (
    HashSubjectObject,
    PathBMC,
    SemanticHash,
    UndirectedOneHop,
)
from repro.rdf.terms import Variable
from repro.workloads.generators import (
    chain_query,
    cycle_query,
    star_query,
    tree_query,
)

ALL_ALGORITHMS = ["td-cmd", "td-cmdp", "hgr-td-cmd", "td-auto"]
ALL_METHODS = [None, HashSubjectObject(), SemanticHash(2), PathBMC(), UndirectedOneHop()]


# ----------------------------------------------------------------------
# hand-construction helpers (bypass PlanBuilder on purpose)
# ----------------------------------------------------------------------
def raw_scan(graph, index):
    return ScanNode(
        bits=bs.bit(index),
        cardinality=1.0,
        cost=0.0,
        pattern_index=index,
        pattern=graph.patterns[index],
    )


def raw_join(children, algorithm=JoinAlgorithm.REPARTITION, variable=None, bits=None):
    if bits is None:
        bits = 0
        for child in children:
            bits |= child.bits
    return JoinNode(
        bits=bits,
        cardinality=1.0,
        cost=0.0,
        algorithm=algorithm,
        join_variable=variable,
        children=tuple(children),
        operator_cost=0.0,
    )


@pytest.fixture
def chain3():
    """Chain of 3 patterns with its structure-only context."""
    query = chain_query(3)
    context = VerificationContext.for_query(query, structure_only=True)
    return query, context


def jvar(context, *pattern_indices):
    """The join variable whose Ntp is exactly the given patterns."""
    graph = context.join_graph
    want = bs.from_indices(pattern_indices)
    for v in graph.join_variables:
        if graph.ntp(v) == want:
            return v
    raise AssertionError(f"no join variable with ntp {want:#x}")


# ----------------------------------------------------------------------
# the five named adversarial plans (+ PV000, PV003, PV007 variants)
# ----------------------------------------------------------------------
class TestNamedViolations:
    def test_disconnected_division_pv001(self, chain3):
        _, context = chain3
        graph = context.join_graph
        s0, s1, s2 = (raw_scan(graph, i) for i in range(3))
        # {tp0, tp2} of a chain share no join variable: disconnected.
        inner = raw_join([s0, s2], variable=jvar(context, 0, 1))
        root = raw_join([inner, s1], variable=jvar(context, 0, 1))
        report = PlanVerifier(context).verify(root)
        assert "PV001" in report.codes()
        with pytest.raises(DisconnectedDivision):
            PlanVerifier(context).check(root)

    def test_overlapping_child_bitsets_pv002(self, chain3):
        _, context = chain3
        graph = context.join_graph
        s0, s1, s2 = (raw_scan(graph, i) for i in range(3))
        j01 = raw_join([s0, s1], variable=jvar(context, 0, 1))
        # s1 appears both inside j01 and as a direct child.
        root = raw_join([j01, s1, s2], variable=jvar(context, 1, 2))
        report = PlanVerifier(context).verify(root)
        assert report.codes() == ("PV002",)
        with pytest.raises(OverlappingChildBitsets):
            PlanVerifier(context).check(root)

    def test_child_coverage_gap_pv003(self, chain3):
        _, context = chain3
        graph = context.join_graph
        s0, s1, _ = (raw_scan(graph, i) for i in range(3))
        # claims the full query but only joins the first two patterns
        root = raw_join([s0, s1], variable=jvar(context, 0, 1), bits=graph.full)
        report = PlanVerifier(context).verify(root)
        assert report.codes() == ("PV003",)
        with pytest.raises(ChildCoverageGap):
            PlanVerifier(context).check(root)

    def test_kary_broadcast_pv004_under_td_cmdp_only(self):
        query = star_query(3)
        context = VerificationContext.for_query(query, structure_only=True)
        graph = context.join_graph
        center = graph.join_variables[0]
        scans = [raw_scan(graph, i) for i in range(3)]
        root = raw_join(scans, algorithm=JoinAlgorithm.BROADCAST, variable=center)
        # legal for plain TD-CMD (k-ary broadcasts allowed)...
        assert PlanVerifier(context).verify(root).ok
        # ...but a Rule-2 violation under any TD-CMDP-labeled profile
        pruned = context.with_profile(profile_for_algorithm("TD-CMDP[parallel x4]"))
        report = PlanVerifier(pruned).verify(root)
        assert report.codes() == ("PV004",)
        with pytest.raises(KAryBroadcast):
            PlanVerifier(pruned).check(root)

    def test_non_colocated_local_query_pv005(self):
        query = chain_query(3)
        context = VerificationContext.for_query(
            query, partitioning=HashSubjectObject(), structure_only=True
        )
        graph = context.join_graph
        # precondition: hash-so does not co-locate the whole 3-chain
        assert not context.local_index.is_local(graph.full)
        scans = [raw_scan(graph, i) for i in range(3)]
        root = raw_join(
            scans, algorithm=JoinAlgorithm.LOCAL, variable=jvar(context, 0, 1)
        )
        report = PlanVerifier(context).verify(root)
        assert report.codes() == ("PV005",)
        with pytest.raises(NonCoLocatedLocalQuery):
            PlanVerifier(context).check(root)

    def test_cost_mismatch_pv006(self):
        query = cycle_query(4)
        statistics = StatisticsCatalog.from_random(query, random.Random(0))
        result = optimize(query, algorithm="td-cmd", statistics=statistics)
        context = VerificationContext.for_query(query, statistics=statistics)
        assert PlanVerifier(context).verify(result.plan).ok
        corrupted = dataclasses.replace(result.plan, cost=result.plan.cost + 1.0)
        report = PlanVerifier(context).verify(corrupted)
        assert report.codes() == ("PV006",)
        with pytest.raises(CostMismatch):
            PlanVerifier(context).check(corrupted)

    def test_variable_binding_violation_pv007(self, chain3):
        _, context = chain3
        graph = context.join_graph
        s0, s1, s2 = (raw_scan(graph, i) for i in range(3))
        j01 = raw_join([s0, s1], variable=jvar(context, 0, 1))
        # tp2 contains no pattern binding the tp0/tp1 join variable
        root = raw_join([j01, s2], variable=jvar(context, 0, 1))
        report = PlanVerifier(context).verify(root)
        assert report.codes() == ("PV007",)
        with pytest.raises(VariableBindingViolation):
            PlanVerifier(context).check(root)

    def test_distributed_join_without_variable_pv007(self, chain3):
        _, context = chain3
        graph = context.join_graph
        s0, s1, s2 = (raw_scan(graph, i) for i in range(3))
        j01 = raw_join([s0, s1], variable=jvar(context, 0, 1))
        root = raw_join([j01, s2], variable=None)
        assert PlanVerifier(context).verify(root).codes() == ("PV007",)

    def test_foreign_join_variable_pv007(self, chain3):
        _, context = chain3
        graph = context.join_graph
        s0, s1, s2 = (raw_scan(graph, i) for i in range(3))
        j01 = raw_join([s0, s1], variable=jvar(context, 0, 1))
        root = raw_join([j01, s2], variable=Variable("not_a_join_var"))
        assert PlanVerifier(context).verify(root).codes() == ("PV007",)

    def test_malformed_root_and_scan_pv000(self, chain3):
        _, context = chain3
        graph = context.join_graph
        # root does not cover the whole query
        report = PlanVerifier(context).verify(raw_scan(graph, 0))
        assert "PV000" in report.codes()
        # scan whose pattern_index disagrees with its bitset
        bad_scan = ScanNode(
            bits=bs.bit(1), cardinality=1.0, cost=0.0, pattern_index=0
        )
        s2 = raw_scan(graph, 2)
        s0 = raw_scan(graph, 0)
        root = raw_join(
            [raw_join([s0, bad_scan], variable=jvar(context, 0, 1)), s2],
            variable=jvar(context, 1, 2),
        )
        assert "PV000" in PlanVerifier(context).verify(root).codes()
        # unary "join"
        unary = dataclasses.replace(root, children=(root.children[0],))
        assert "PV000" in PlanVerifier(context).verify(unary).codes()

    def test_raise_if_failed_picks_lowest_code(self, chain3):
        _, context = chain3
        graph = context.join_graph
        s0, s1, s2 = (raw_scan(graph, i) for i in range(3))
        # disconnected (PV001) AND badly-bound (PV007) in one node
        inner = raw_join([s0, s2], variable=jvar(context, 0, 1))
        root = raw_join([inner, s1], variable=jvar(context, 0, 1))
        report = PlanVerifier(context).verify(root)
        assert {"PV001", "PV007"} <= set(report.codes())
        with pytest.raises(DisconnectedDivision):
            report.raise_if_failed()


class TestReport:
    def test_render_and_describe(self, chain3):
        _, context = chain3
        graph = context.join_graph
        s0, s1, _ = (raw_scan(graph, i) for i in range(3))
        root = raw_join([s0, s1], variable=jvar(context, 0, 1), bits=graph.full)
        report = PlanVerifier(context).verify(root)
        text = report.render()
        assert "FAILED" in text and "PV003" in text
        violation = report.violations[0]
        assert violation.describe().startswith("PV003 [bits=0x7]")
        assert isinstance(violation, InvariantViolation)

    def test_clean_report_bookkeeping(self):
        query = cycle_query(4)
        statistics = StatisticsCatalog.from_random(query, random.Random(0))
        result = optimize(query, algorithm="td-cmdp", statistics=statistics)
        context = VerificationContext.for_query(query, statistics=statistics)
        report = verify_result(result, context)
        assert report.ok
        assert report.codes() == ()
        assert report.nodes_checked >= len(query)
        assert report.checks_run > report.nodes_checked
        assert report.elapsed_seconds >= 0.0
        assert "OK" in report.render()


class TestProfiles:
    def test_profile_for_algorithm_labels(self):
        for label in ("td-cmdp", "TD-CMDP[parallel x4]", "td-cmdp+cache",
                      "TD-Auto[TD-CMDP]"):
            assert profile_for_algorithm(label).broadcast_binary_only
        for label in ("td-cmd", "TD-CMD[parallel x2]", "hgr-td-cmd", "td-auto"):
            assert not profile_for_algorithm(label).broadcast_binary_only

    def test_with_profile_is_non_destructive(self, chain3):
        _, context = chain3
        pruned = context.with_profile(InvariantProfile(broadcast_binary_only=True))
        assert pruned.profile.broadcast_binary_only
        assert not context.profile.broadcast_binary_only
        assert pruned.join_graph is context.join_graph


# ----------------------------------------------------------------------
# the positive direction: real optimizer output is always clean
# ----------------------------------------------------------------------
class TestOptimizerOutputIsClean:
    @pytest.mark.parametrize("algorithm", ALL_ALGORITHMS)
    @pytest.mark.parametrize("method", ALL_METHODS, ids=lambda m: repr(m))
    def test_all_algorithms_and_partitioners(self, algorithm, method):
        query = cycle_query(5)
        statistics = StatisticsCatalog.from_random(query, random.Random(0))
        result = optimize(
            query, algorithm=algorithm, statistics=statistics, partitioning=method
        )
        context = VerificationContext.for_query(
            query, statistics=statistics, partitioning=method
        )
        report = verify_result(result, context)
        assert report.ok, report.render()

    def test_parallel_search_results_verify(self):
        query = cycle_query(6)
        statistics = StatisticsCatalog.from_random(query, random.Random(1))
        result = optimize(
            query, algorithm="td-cmdp", statistics=statistics, jobs=2, verify=True
        )
        assert "parallel" in result.algorithm
        context = VerificationContext.for_query(query, statistics=statistics)
        assert verify_result(result, context).ok

    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        shape=st.sampled_from(["chain", "cycle", "star", "tree"]),
        size=st.integers(min_value=2, max_value=6),
        seed=st.integers(min_value=0, max_value=5000),
        method_index=st.integers(min_value=0, max_value=len(ALL_METHODS) - 1),
        algorithm=st.sampled_from(ALL_ALGORITHMS),
    )
    def test_property_verifier_clean(self, shape, size, seed, method_index, algorithm):
        maker = {
            "chain": chain_query,
            "cycle": cycle_query,
            "star": star_query,
            "tree": tree_query,
        }[shape]
        query = maker(max(size, 3) if shape == "cycle" else size)
        statistics = StatisticsCatalog.from_random(query, random.Random(seed))
        method = ALL_METHODS[method_index]
        result = optimize(
            query, algorithm=algorithm, statistics=statistics, partitioning=method
        )
        context = VerificationContext.for_query(
            query, statistics=statistics, partitioning=method
        )
        report = verify_result(result, context)
        assert report.ok, report.render()


# ----------------------------------------------------------------------
# the --verify path through optimize(): cache hits and corruption
# ----------------------------------------------------------------------
class TestVerifiedOptimize:
    def setup_method(self):
        self.query = cycle_query(5)
        self.statistics = StatisticsCatalog.from_random(self.query, random.Random(0))

    def _optimize(self, cache, **kwargs):
        return optimize(
            self.query,
            algorithm="td-cmdp",
            statistics=self.statistics,
            plan_cache=cache,
            verify=True,
            **kwargs,
        )

    def test_verified_cache_hit_passes(self):
        cache = PlanCache()
        first = self._optimize(cache)
        hit = self._optimize(cache)
        assert hit.algorithm.endswith("+cache")
        assert hit.cost == pytest.approx(first.cost)
        assert cache.stats.hits == 1
        assert cache.stats.invalidations == 0

    def test_corrupted_cache_entry_is_treated_as_a_miss(self):
        cache = PlanCache()
        first = self._optimize(cache)
        key = next(iter(cache._entries))
        cache._entries[key]["plan"]["cost"] = first.cost + 100.0
        # the corrupted hit must be detected, dropped, and re-optimized
        fresh = self._optimize(cache)
        assert not fresh.algorithm.endswith("+cache")
        assert fresh.cost == pytest.approx(first.cost)
        assert cache.stats.invalidations == 1
        # the fresh result was re-stored: the next lookup hits cleanly
        again = self._optimize(cache)
        assert again.algorithm.endswith("+cache")
        assert cache.stats.invalidations == 1

    def test_corrupted_cache_entry_returned_without_verify(self):
        # control: without --verify the corruption goes unnoticed,
        # which is exactly why the verified path exists
        cache = PlanCache()
        first = optimize(
            self.query, algorithm="td-cmdp",
            statistics=self.statistics, plan_cache=cache,
        )
        key = next(iter(cache._entries))
        cache._entries[key]["plan"]["cost"] = first.cost + 100.0
        stale = optimize(
            self.query, algorithm="td-cmdp",
            statistics=self.statistics, plan_cache=cache,
        )
        assert stale.algorithm.endswith("+cache")
        assert stale.cost == pytest.approx(first.cost + 100.0)

    def test_fresh_result_verification_is_silent(self):
        result = optimize(
            self.query, algorithm="td-auto", statistics=self.statistics, verify=True
        )
        assert result.plan.bits == (1 << len(self.query)) - 1
