"""Tests for plan trees: structure, validation, signatures."""

import pytest

from repro.core import JoinGraph
from repro.core import bitset as bs
from repro.core.cardinality import CardinalityEstimator, StatisticsCatalog
from repro.core.cost import PlanBuilder
from repro.core.plans import (
    JoinAlgorithm,
    JoinNode,
    ScanNode,
    count_operators,
    plan_signature,
    validate_plan,
)
from repro.workloads.generators import chain_query


@pytest.fixture
def builder():
    q = chain_query(4)
    jg = JoinGraph(q)
    return PlanBuilder(jg, CardinalityEstimator(jg, StatisticsCatalog.uniform(q)))


class TestStructure:
    def test_walk_preorder(self, builder):
        plan = builder.join(
            JoinAlgorithm.REPARTITION,
            [
                builder.join(JoinAlgorithm.LOCAL, [builder.scan(0), builder.scan(1)]),
                builder.join(JoinAlgorithm.LOCAL, [builder.scan(2), builder.scan(3)]),
            ],
        )
        nodes = list(plan.walk())
        assert len(nodes) == 7
        assert isinstance(nodes[0], JoinNode)
        assert count_operators(plan) == 3
        assert len(list(plan.leaves())) == 4

    def test_depth(self, builder):
        scan = builder.scan(0)
        assert scan.depth() == 0
        flat = builder.join(
            JoinAlgorithm.LOCAL, [builder.scan(i) for i in range(4)]
        )
        assert flat.depth() == 1

    def test_describe_renders_tree(self, builder):
        plan = builder.join(
            JoinAlgorithm.BROADCAST, [builder.scan(0), builder.scan(1)]
        )
        text = plan.describe()
        assert "⋈B" in text
        assert "scan[0]" in text and "scan[1]" in text

    def test_join_symbols(self):
        assert JoinAlgorithm.LOCAL.symbol == "⋈L"
        assert JoinAlgorithm.BROADCAST.symbol == "⋈B"
        assert JoinAlgorithm.REPARTITION.symbol == "⋈R"


class TestValidation:
    def test_valid_plan_passes(self, builder):
        plan = builder.join(
            JoinAlgorithm.REPARTITION, [builder.scan(0), builder.scan(1)]
        )
        validate_plan(plan, expected_bits=0b11)

    def test_wrong_root_bits_rejected(self, builder):
        plan = builder.join(
            JoinAlgorithm.REPARTITION, [builder.scan(0), builder.scan(1)]
        )
        with pytest.raises(ValueError):
            validate_plan(plan, expected_bits=0b111)

    def test_overlapping_children_detected(self, builder):
        s0 = builder.scan(0)
        bogus = JoinNode(
            bits=0b1,
            cardinality=1.0,
            cost=0.0,
            algorithm=JoinAlgorithm.LOCAL,
            children=(s0, s0),
        )
        with pytest.raises(ValueError):
            validate_plan(bogus)

    def test_arity_one_detected(self, builder):
        bogus = JoinNode(
            bits=0b1,
            cardinality=1.0,
            cost=0.0,
            algorithm=JoinAlgorithm.LOCAL,
            children=(builder.scan(0),),
        )
        with pytest.raises(ValueError):
            validate_plan(bogus)

    def test_multi_pattern_scan_detected(self):
        bogus = ScanNode(bits=0b11, cardinality=1.0, cost=0.0, pattern_index=0)
        with pytest.raises(ValueError):
            validate_plan(bogus)


class TestSignature:
    def test_signature_is_child_order_insensitive(self, builder):
        a = builder.join(JoinAlgorithm.LOCAL, [builder.scan(0), builder.scan(1)])
        b = builder.join(JoinAlgorithm.LOCAL, [builder.scan(1), builder.scan(0)])
        assert plan_signature(a) == plan_signature(b)

    def test_signature_distinguishes_algorithms(self, builder):
        a = builder.join(JoinAlgorithm.LOCAL, [builder.scan(0), builder.scan(1)])
        b = builder.join(
            JoinAlgorithm.REPARTITION, [builder.scan(0), builder.scan(1)]
        )
        assert plan_signature(a) != plan_signature(b)
