"""Tests for TD-CMDP (Rules 1–3 of Section IV-A)."""

import random

import pytest

from repro.core import (
    JoinGraph,
    LocalQueryIndex,
    PrunedTopDownEnumerator,
    TopDownEnumerator,
)
from repro.core import bitset as bs
from repro.core.optimizer import make_builder
from repro.core.plans import JoinAlgorithm, validate_plan
from repro.partitioning import HashSubjectObject, PathBMC
from repro.workloads.generators import (
    dense_query,
    generate_query,
    star_query,
    tree_query,
)
from repro.core.join_graph import QueryShape


class TestRules:
    def test_rule2_broadcast_joins_are_binary(self):
        for seed in range(4):
            query = tree_query(7, random.Random(seed))
            builder = make_builder(query, seed=seed)
            result = PrunedTopDownEnumerator(builder.join_graph, builder).optimize()
            for join in result.plan.joins():
                if join.algorithm is JoinAlgorithm.BROADCAST:
                    assert join.arity == 2

    def test_rule1_multiway_joins_are_complete(self):
        """Every k>2 join in a TD-CMDP plan is a ccmd of its subquery."""
        for seed in range(4):
            query = dense_query(8, random.Random(seed))
            builder = make_builder(query, seed=seed)
            result = PrunedTopDownEnumerator(builder.join_graph, builder).optimize()
            jg = builder.join_graph
            for join in result.plan.joins():
                if join.arity > 2 and join.algorithm is not JoinAlgorithm.LOCAL:
                    ntp = jg.ntp(join.join_variable)
                    for child in join.children:
                        assert bs.popcount(child.bits & ntp) == 1

    def test_rule3_local_short_circuit(self, fig1_query):
        builder = make_builder(fig1_query, seed=1)
        index = LocalQueryIndex(builder.join_graph, HashSubjectObject())
        pruned = PrunedTopDownEnumerator(builder.join_graph, builder, index)
        pruned.optimize()
        assert pruned.stats.local_short_circuits > 0

    def test_fully_local_query_is_one_plan(self):
        query = tree_query(6, random.Random(2))
        builder = make_builder(query, seed=2)
        index = LocalQueryIndex(builder.join_graph, PathBMC())
        if index.is_local(builder.join_graph.full):
            pruned = PrunedTopDownEnumerator(builder.join_graph, builder, index)
            result = pruned.optimize()
            assert pruned.stats.plans_considered == 1
            assert result.plan.depth() == 1


class TestQuality:
    @pytest.mark.parametrize("seed", range(6))
    def test_never_better_than_tdcmd_but_close(self, seed):
        """TD-CMDP explores a subset of TD-CMD's space: cost ≥ optimal."""
        rng = random.Random(seed)
        shape = rng.choice([QueryShape.TREE, QueryShape.DENSE, QueryShape.STAR])
        size = rng.randint(5, 8)
        query = generate_query(shape, size, rng)
        builder = make_builder(query, seed=seed)
        full = TopDownEnumerator(builder.join_graph, builder).optimize()
        pruned = PrunedTopDownEnumerator(builder.join_graph, builder).optimize()
        validate_plan(pruned.plan, builder.join_graph.full)
        assert pruned.cost >= full.cost - 1e-9

    def test_search_space_smaller_on_stars(self):
        query = star_query(8)
        builder = make_builder(query, seed=0)
        full = TopDownEnumerator(builder.join_graph, builder)
        full.optimize()
        builder2 = make_builder(query, seed=0)
        pruned = PrunedTopDownEnumerator(builder2.join_graph, builder2)
        pruned.optimize()
        assert pruned.stats.plans_considered < full.stats.plans_considered

    def test_pruned_faster_on_high_degree(self):
        """On an 11-star TD-CMDP must stay well under TD-CMD's work.

        Rule 1 leaves all binary divisions in place (≈ Σ C(n,k)·2^(k−1)
        of them) but removes the Bell-number blow-up of incomplete
        multi-way divisions, an order-of-magnitude reduction at n = 11.
        """
        from repro.core.counting import t_star

        query = star_query(11)
        builder = make_builder(query, seed=0)
        pruned = PrunedTopDownEnumerator(builder.join_graph, builder)
        pruned.optimize()
        full_space = 2 * t_star(11)  # TD-CMD: two operators per cmd
        assert pruned.stats.plans_considered < full_space / 10
