"""Tests for HGR-TD-CMD: join graph reduction (Section IV-B)."""

import random

import pytest

from repro.core import (
    JoinGraph,
    LocalQueryIndex,
    ReductionOptimizer,
    TopDownEnumerator,
)
from repro.core import bitset as bs
from repro.core.optimizer import make_builder
from repro.core.plans import JoinAlgorithm, validate_plan
from repro.core.reduction import (
    build_reduced_problem,
    candidate_local_queries,
    greedy_join_graph_reduction,
)
from repro.partitioning import HashSubjectObject, PathBMC
from repro.workloads.generators import dense_query, tree_query


class TestGreedyCover:
    def test_parts_partition_the_query(self, fig1_builder):
        index = LocalQueryIndex(fig1_builder.join_graph, HashSubjectObject())
        parts = greedy_join_graph_reduction(
            fig1_builder.join_graph, index, fig1_builder.estimator
        )
        union = 0
        for part in parts:
            assert part  # non-empty
            assert union & part == 0  # disjoint
            union |= part
        assert union == fig1_builder.join_graph.full

    def test_every_part_is_local_and_connected(self, fig1_builder):
        index = LocalQueryIndex(fig1_builder.join_graph, HashSubjectObject())
        parts = greedy_join_graph_reduction(
            fig1_builder.join_graph, index, fig1_builder.estimator
        )
        for part in parts:
            assert index.is_local(part)
            assert fig1_builder.join_graph.is_connected(part)

    def test_without_partitioning_all_singletons(self, fig1_builder):
        index = LocalQueryIndex(fig1_builder.join_graph, None)
        parts = greedy_join_graph_reduction(
            fig1_builder.join_graph, index, fig1_builder.estimator
        )
        assert sorted(parts) == [bs.bit(i) for i in range(7)]

    def test_candidates_include_singletons(self, fig1_builder):
        index = LocalQueryIndex(fig1_builder.join_graph, HashSubjectObject())
        candidates = candidate_local_queries(fig1_builder.join_graph, index)
        for i in range(fig1_builder.join_graph.size):
            assert bs.bit(i) in candidates

    def test_candidates_are_connected_local_queries(self, fig1_builder):
        index = LocalQueryIndex(fig1_builder.join_graph, HashSubjectObject())
        for candidate in candidate_local_queries(fig1_builder.join_graph, index):
            assert fig1_builder.join_graph.is_connected(candidate)
            assert index.is_local(candidate)


class TestReducedProblem:
    def test_reduced_graph_structure(self, fig1_builder):
        index = LocalQueryIndex(fig1_builder.join_graph, HashSubjectObject())
        parts = greedy_join_graph_reduction(
            fig1_builder.join_graph, index, fig1_builder.estimator
        )
        reduced_graph, reduced_estimator = build_reduced_problem(
            fig1_builder.join_graph, fig1_builder.estimator, parts
        )
        assert reduced_graph.size == len(parts)
        assert reduced_graph.is_connected(reduced_graph.full)
        # reduced leaf statistics = original subquery estimates
        for i, part in enumerate(parts):
            assert reduced_estimator.pattern_cardinality(i) == pytest.approx(
                fig1_builder.estimator.cardinality(part)
            )


class TestEndToEnd:
    def test_plan_valid_and_leaves_are_local(self, fig1_builder):
        index = LocalQueryIndex(fig1_builder.join_graph, HashSubjectObject())
        result = ReductionOptimizer(
            fig1_builder.join_graph, fig1_builder, index
        ).optimize()
        validate_plan(result.plan, fig1_builder.join_graph.full)
        for join in result.plan.joins():
            if join.algorithm is JoinAlgorithm.LOCAL:
                assert index.is_local(join.bits)

    def test_cost_never_below_tdcmd(self, fig1_builder):
        index = LocalQueryIndex(fig1_builder.join_graph, HashSubjectObject())
        full = TopDownEnumerator(
            fig1_builder.join_graph, fig1_builder, index
        ).optimize()
        reduced = ReductionOptimizer(
            fig1_builder.join_graph, fig1_builder, index
        ).optimize()
        assert reduced.cost >= full.cost - 1e-9

    def test_fully_local_query_collapses_to_one_part(self):
        query = tree_query(6, random.Random(4))
        builder = make_builder(query, seed=4)
        index = LocalQueryIndex(builder.join_graph, PathBMC())
        result = ReductionOptimizer(builder.join_graph, builder, index).optimize()
        validate_plan(result.plan, builder.join_graph.full)

    def test_large_dense_query_is_fast(self):
        query = dense_query(20, random.Random(9))
        builder = make_builder(query, seed=9)
        index = LocalQueryIndex(builder.join_graph, HashSubjectObject())
        result = ReductionOptimizer(
            builder.join_graph, builder, index, timeout_seconds=60
        ).optimize()
        validate_plan(result.plan, builder.join_graph.full)
        assert result.elapsed_seconds < 60
