"""Tests for sampling-based statistics (StatisticsCatalog.from_sample)."""

import random

import pytest

from repro.core import StatisticsCatalog, optimize
from repro.engine import Cluster, Executor, evaluate_reference
from repro.partitioning import HashSubjectObject
from repro.workloads import generate_lubm, lubm_query


@pytest.fixture(scope="module")
def lubm():
    return generate_lubm()


class TestFromSample:
    def test_full_sample_equals_exact(self, lubm):
        query = lubm_query("L4")
        exact = StatisticsCatalog.from_dataset(query, lubm)
        sampled = StatisticsCatalog.from_sample(query, lubm, fraction=1.0)
        for a, b in zip(exact.per_pattern, sampled.per_pattern):
            assert a.cardinality == pytest.approx(b.cardinality)

    def test_sampled_counts_are_scaled(self, lubm):
        query = lubm_query("L2")
        exact = StatisticsCatalog.from_dataset(query, lubm)
        sampled = StatisticsCatalog.from_sample(
            query, lubm, fraction=0.5, rng=random.Random(1)
        )
        for a, b in zip(exact.per_pattern, sampled.per_pattern):
            # scaled estimate within a loose factor of truth on half samples
            assert b.cardinality == pytest.approx(a.cardinality, rel=0.7)
            assert b.cardinality >= 1.0

    def test_deterministic_for_seed(self, lubm):
        query = lubm_query("L2")
        a = StatisticsCatalog.from_sample(query, lubm, 0.3, random.Random(7))
        b = StatisticsCatalog.from_sample(query, lubm, 0.3, random.Random(7))
        assert [s.cardinality for s in a.per_pattern] == [
            s.cardinality for s in b.per_pattern
        ]

    def test_fraction_validated(self, lubm):
        query = lubm_query("L1")
        with pytest.raises(ValueError):
            StatisticsCatalog.from_sample(query, lubm, fraction=0.0)
        with pytest.raises(ValueError):
            StatisticsCatalog.from_sample(query, lubm, fraction=1.5)

    def test_plans_from_sampled_stats_still_execute_correctly(self, lubm):
        """Bad estimates change plan choice, never correctness."""
        query = lubm_query("L4")
        method = HashSubjectObject()
        sampled = StatisticsCatalog.from_sample(
            query, lubm, fraction=0.05, rng=random.Random(3)
        )
        result = optimize(query, statistics=sampled, partitioning=method)
        cluster = Cluster.build(lubm, method, cluster_size=4)
        relation, _ = Executor(cluster).execute(result.plan, query)
        assert relation.rows == evaluate_reference(query, lubm.graph).rows
