"""Tests for plan serialization (JSON round-trip, DOT export)."""

import json

import pytest

from repro.core import TopDownEnumerator
from repro.core.optimizer import make_builder
from repro.core.plans import plan_signature, validate_plan
from repro.core.serialize import (
    plan_from_dict,
    plan_from_json,
    plan_to_dict,
    plan_to_dot,
    plan_to_json,
)


@pytest.fixture
def optimized(fig1_query):
    builder = make_builder(fig1_query, seed=9)
    result = TopDownEnumerator(builder.join_graph, builder).optimize()
    return fig1_query, result.plan


class TestJSONRoundTrip:
    def test_round_trip_preserves_structure(self, optimized):
        query, plan = optimized
        restored = plan_from_json(plan_to_json(plan), query)
        assert plan_signature(restored) == plan_signature(plan)
        validate_plan(restored, plan.bits)

    def test_round_trip_preserves_costs(self, optimized):
        query, plan = optimized
        restored = plan_from_json(plan_to_json(plan), query)
        assert restored.cost == pytest.approx(plan.cost)
        assert restored.cardinality == pytest.approx(plan.cardinality)

    def test_round_trip_without_query_keeps_indices(self, optimized):
        _, plan = optimized
        restored = plan_from_json(plan_to_json(plan))
        scans = sorted(s.pattern_index for s in restored.leaves())
        assert scans == sorted(s.pattern_index for s in plan.leaves())
        assert all(s.pattern is None for s in restored.leaves())

    def test_json_is_valid_json(self, optimized):
        _, plan = optimized
        data = json.loads(plan_to_json(plan, indent=2))
        assert data["kind"] == "join"

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            plan_from_dict({"kind": "mystery"})

    def test_unserializable_type_rejected(self):
        with pytest.raises(TypeError):
            plan_to_dict(object())  # type: ignore[arg-type]


class TestDot:
    def test_dot_contains_all_nodes(self, optimized):
        _, plan = optimized
        dot = plan_to_dot(plan, name="fig1")
        assert dot.startswith('digraph "fig1"')
        assert dot.rstrip().endswith("}")
        scan_count = dot.count("shape=box")
        assert scan_count == len(list(plan.leaves()))
        join_count = dot.count("shape=ellipse")
        assert join_count == len(list(plan.joins()))

    def test_dot_edges_match_tree(self, optimized):
        _, plan = optimized
        dot = plan_to_dot(plan)
        edge_count = dot.count("->")
        node_count = len(list(plan.walk()))
        assert edge_count == node_count - 1  # a tree
