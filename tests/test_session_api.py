"""The redesigned session API: :class:`OptimizeOptions` + :class:`Optimizer`.

The contract under test: a session produces *exactly* the plans the
legacy :func:`repro.core.optimizer.optimize` facade produced, while
owning cross-call state (statistics cache, plan cache, tracer) that the
facade rebuilt on every call.
"""

from __future__ import annotations

import pytest

from repro import OptimizeOptions, Optimizer, parse_query
from repro.core.optimizer import ALGORITHMS, optimize
from repro.core.plan_cache import PlanCache
from repro.partitioning import HashSubjectObject


class TestOptimizeOptions:
    def test_defaults_mirror_the_legacy_facade(self):
        options = OptimizeOptions()
        assert options.algorithm == "td-auto"
        assert options.jobs == 1
        assert options.seed == 0
        assert options.plan_cache is None
        assert options.verify is False
        assert options.trace is False

    def test_algorithm_key_lowercases(self):
        assert OptimizeOptions(algorithm="TD-CMDP").algorithm_key == "td-cmdp"

    def test_with_overrides_returns_a_modified_copy(self):
        base = OptimizeOptions(algorithm="td-cmd", seed=7)
        derived = base.with_overrides(jobs=4)
        assert derived.jobs == 4
        assert derived.algorithm == "td-cmd"
        assert derived.seed == 7
        assert base.jobs == 1  # the original is untouched


class TestSessionConstruction:
    def test_unknown_algorithm_fails_at_construction(self):
        with pytest.raises(ValueError, match="unknown algorithm"):
            Optimizer(OptimizeOptions(algorithm="bogus"))

    def test_nonpositive_jobs_fails_at_construction(self):
        with pytest.raises(ValueError, match="jobs"):
            Optimizer(OptimizeOptions(jobs=0))

    def test_keyword_overrides_compose_with_options(self):
        session = Optimizer(OptimizeOptions(seed=3), algorithm="td-cmdp")
        assert session.options.algorithm == "td-cmdp"
        assert session.options.seed == 3

    def test_bare_constructor_uses_defaults(self):
        session = Optimizer()
        assert session.options == OptimizeOptions()
        assert session.tracer is None


class TestSessionMatchesShim:
    @pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
    def test_same_plan_as_the_legacy_facade(self, fig1_query, algorithm):
        via_shim = optimize(fig1_query, algorithm=algorithm, seed=42)
        via_session = Optimizer(
            OptimizeOptions(algorithm=algorithm, seed=42)
        ).optimize(fig1_query)
        assert via_session.cost == via_shim.cost
        assert via_session.algorithm == via_shim.algorithm
        assert via_session.stats.summary() == via_shim.stats.summary()
        assert (
            via_session.plan.describe() == via_shim.plan.describe()
        )

    def test_partitioning_aware_session(self, fig1_query):
        method = HashSubjectObject()
        via_shim = optimize(
            fig1_query, algorithm="td-cmdp", seed=42, partitioning=method
        )
        via_session = Optimizer(
            OptimizeOptions(
                algorithm="td-cmdp", seed=42, partitioning=method
            )
        ).optimize(fig1_query)
        assert via_session.cost == via_shim.cost
        assert via_session.plan.describe() == via_shim.plan.describe()


class TestSessionState:
    def test_statistics_resolved_once_per_query_object(self, fig1_query):
        session = Optimizer(OptimizeOptions(seed=42))
        first = session.resolve_statistics(fig1_query)
        second = session.resolve_statistics(fig1_query)
        assert first is second
        session.optimize(fig1_query)
        assert session.resolve_statistics(fig1_query) is first

    def test_prime_statistics_short_circuits_resolution(self, fig1_query):
        session = Optimizer(OptimizeOptions(seed=42))
        catalog = Optimizer(OptimizeOptions(seed=7)).resolve_statistics(
            fig1_query
        )
        session.prime_statistics(fig1_query, catalog)
        assert session.resolve_statistics(fig1_query) is catalog

    def test_explicit_statistics_win(self, fig1_query):
        catalog = Optimizer(OptimizeOptions(seed=9)).resolve_statistics(
            fig1_query
        )
        session = Optimizer(OptimizeOptions(statistics=catalog, seed=42))
        assert session.resolve_statistics(fig1_query) is catalog

    def test_plan_cache_is_shared_across_calls(self, fig1_query):
        cache = PlanCache()
        session = Optimizer(
            OptimizeOptions(algorithm="td-cmdp", seed=42, plan_cache=cache)
        )
        first = session.optimize(fig1_query)
        second = session.optimize(fig1_query)
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert second.cost == first.cost
        assert second.plan.describe() == first.plan.describe()

    def test_optimize_many_reuses_the_session(self, fig1_query):
        other = parse_query(
            """
            PREFIX p: <http://example.org/>
            SELECT * WHERE {
              ?x p:a ?y .
              ?y p:b ?z .
            }
            """,
            name="pair",
        )
        cache = PlanCache()
        session = Optimizer(
            OptimizeOptions(algorithm="td-cmd", seed=42, plan_cache=cache)
        )
        results = session.optimize_many([fig1_query, other, fig1_query])
        assert len(results) == 3
        assert results[0].cost == results[2].cost
        assert cache.stats.hits == 1  # third call reuses the first plan

    def test_verified_session_matches_unverified(self, fig1_query):
        plain = Optimizer(
            OptimizeOptions(algorithm="td-cmdp", seed=42)
        ).optimize(fig1_query)
        verified = Optimizer(
            OptimizeOptions(algorithm="td-cmdp", seed=42, verify=True)
        ).optimize(fig1_query)
        assert verified.cost == plain.cost
        assert verified.plan.describe() == plain.plan.describe()

    def test_repr_reflects_session_state(self, fig1_query):
        session = Optimizer(
            OptimizeOptions(
                algorithm="td-cmd", plan_cache=PlanCache(), trace=True
            )
        )
        session.optimize(fig1_query)
        text = repr(session)
        assert "td-cmd" in text
        assert "cache=1" in text
        assert "spans=" in text


class TestParallelSession:
    def test_parallel_session_matches_serial(self, fig1_query):
        serial = Optimizer(
            OptimizeOptions(algorithm="td-cmd", seed=42)
        ).optimize(fig1_query)
        parallel = Optimizer(
            OptimizeOptions(algorithm="td-cmd", seed=42, jobs=2)
        ).optimize(fig1_query)
        assert parallel.cost == serial.cost
        assert parallel.plan.describe() == serial.plan.describe()
