"""Unit tests for the SPARQL subset parser."""

import pytest

from repro.rdf.terms import IRI, Literal, Variable
from repro.sparql import SPARQLSyntaxError, parse_query
from repro.workloads.lubm import lubm_queries
from repro.workloads.uniprot import uniprot_queries


class TestBasics:
    def test_minimal_query(self):
        q = parse_query("SELECT ?x WHERE { ?x <http://e/p> <http://e/o> . }")
        assert len(q) == 1
        assert q.projection == (Variable("x"),)
        tp = q[0]
        assert tp.subject == Variable("x")
        assert tp.predicate == IRI("http://e/p")
        assert tp.object == IRI("http://e/o")

    def test_star_projection(self):
        q = parse_query("SELECT * WHERE { ?x <http://e/p> ?y . }")
        assert q.projection == ()

    def test_prefix_expansion(self):
        q = parse_query(
            "PREFIX ex: <http://e/> SELECT ?x WHERE { ?x ex:p ex:o . }"
        )
        assert q[0].predicate == IRI("http://e/p")
        assert q[0].object == IRI("http://e/o")

    def test_rdf_type_keyword_a(self):
        q = parse_query("SELECT ?x WHERE { ?x a <http://e/C> . }")
        assert q[0].predicate.value.endswith("#type")

    def test_literal_objects(self):
        q = parse_query('SELECT ?x WHERE { ?x <http://e/p> "hi"@en . }')
        assert q[0].object == Literal("hi", language="en")

    def test_integer_literal(self):
        q = parse_query("SELECT ?x WHERE { ?x <http://e/p> 42 . }")
        assert q[0].object.lexical == "42"
        assert q[0].object.datatype.endswith("integer")

    def test_semicolon_same_subject(self):
        q = parse_query(
            "SELECT * WHERE { ?x <http://e/p> ?y ; <http://e/q> ?z . }"
        )
        assert len(q) == 2
        assert q[0].subject == q[1].subject == Variable("x")

    def test_missing_final_dot_tolerated(self):
        q = parse_query("SELECT ?x WHERE { ?x <http://e/p> ?y }")
        assert len(q) == 1

    def test_duplicate_patterns_deduplicated(self):
        q = parse_query(
            "SELECT * WHERE { ?x <http://e/p> ?y . ?x <http://e/p> ?y . }"
        )
        assert len(q) == 1

    def test_dollar_variables(self):
        q = parse_query("SELECT $x WHERE { $x <http://e/p> ?y . }")
        assert q[0].subject == Variable("x")

    def test_comments_ignored(self):
        q = parse_query(
            "SELECT ?x WHERE { # a comment\n ?x <http://e/p> ?y . }"
        )
        assert len(q) == 1


class TestErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "SELECT ?x { ?x <http://e/p> ?y . }",  # missing WHERE
            "SELECT WHERE { ?x <http://e/p> ?y . }",  # no projection
            "SELECT ?x WHERE { }",  # empty pattern
            "SELECT ?x WHERE { ?x <http://e/p> ?y .",  # unterminated
            "SELECT ?x WHERE { ?x ex:p ?y . }",  # undeclared prefix
            'SELECT ?x WHERE { "lit" <http://e/p> ?y . }',  # literal subject
            "SELECT ?x WHERE { ?x <http://e/p> ?y . } trailing",
            "SELECT ?x WHERE { OPTIONAL { ?x <http://e/p> ?y . } }",
            "SELECT ?x WHERE { FILTER(?x > 3) }",
        ],
    )
    def test_rejects(self, text):
        with pytest.raises(SPARQLSyntaxError):
            parse_query(text)

    def test_error_reports_offset(self):
        with pytest.raises(SPARQLSyntaxError) as excinfo:
            parse_query("SELECT ?x WHERE { ?x ex:p ?y . }")
        assert "offset" in str(excinfo.value)


class TestPaperQueries:
    """Every benchmark query from the paper's appendix must parse."""

    def test_lubm_queries_parse(self):
        queries = lubm_queries()
        assert set(queries) == {f"L{i}" for i in range(1, 11)}
        sizes = {name: len(q) for name, q in queries.items()}
        # Table III pattern counts (L10 is 14 in the appendix text;
        # the table's "12" is inconsistent with the query listing)
        assert sizes["L1"] == 2 and sizes["L2"] == 2
        assert sizes["L3"] == 4 and sizes["L4"] == 4
        assert sizes["L5"] == 8 and sizes["L6"] == 8
        assert sizes["L7"] == 6 and sizes["L8"] == 6
        assert sizes["L9"] == 11
        assert sizes["L10"] == 14

    def test_uniprot_queries_parse(self):
        queries = uniprot_queries()
        assert set(queries) == {f"U{i}" for i in range(1, 6)}
        sizes = {name: len(q) for name, q in queries.items()}
        assert sizes["U1"] == 5 and sizes["U2"] == 5
        assert sizes["U3"] == 11 and sizes["U4"] == 6 and sizes["U5"] == 5

    def test_projection_variables_appear_in_patterns(self):
        for q in {**lubm_queries(), **uniprot_queries()}.values():
            assert set(q.projection) <= q.variables()
