"""Unit tests for the RDF term model."""

import pytest

from repro.rdf.terms import BlankNode, IRI, Literal, Variable, is_concrete


class TestIRI:
    def test_str_renders_angle_brackets(self):
        assert str(IRI("http://example.org/a")) == "<http://example.org/a>"

    def test_equality_and_hash(self):
        assert IRI("x") == IRI("x")
        assert hash(IRI("x")) == hash(IRI("x"))
        assert IRI("x") != IRI("y")

    def test_ordering(self):
        assert IRI("a") < IRI("b")

    def test_not_variable(self):
        assert not IRI("x").is_variable
        assert is_concrete(IRI("x"))


class TestLiteral:
    def test_plain_literal(self):
        assert str(Literal("hi")) == '"hi"'

    def test_language_tag(self):
        assert str(Literal("hi", language="en")) == '"hi"@en'

    def test_datatype(self):
        lit = Literal("5", datatype="http://www.w3.org/2001/XMLSchema#integer")
        assert str(lit) == '"5"^^<http://www.w3.org/2001/XMLSchema#integer>'

    def test_datatype_and_language_mutually_exclusive(self):
        with pytest.raises(ValueError):
            Literal("x", datatype="d", language="en")

    def test_escaping(self):
        assert str(Literal('say "hi"\n')) == '"say \\"hi\\"\\n"'

    def test_equality_considers_datatype(self):
        assert Literal("5") != Literal("5", datatype="d")


class TestBlankNode:
    def test_str(self):
        assert str(BlankNode("b1")) == "_:b1"

    def test_not_variable(self):
        assert not BlankNode("b").is_variable


class TestVariable:
    def test_str(self):
        assert str(Variable("x")) == "?x"

    def test_is_variable(self):
        assert Variable("x").is_variable
        assert not is_concrete(Variable("x"))

    def test_distinct_from_iri(self):
        assert Variable("x") != IRI("x")
