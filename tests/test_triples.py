"""Unit tests for Triple and RDFGraph."""

from repro.rdf import IRI, RDFGraph, Triple, triple


def t(s, p, o):
    return triple(f"http://e/{s}", f"http://e/{p}", f"http://e/{o}")


class TestTriple:
    def test_shorthand_constructor(self):
        tr = triple("http://e/s", "http://e/p", '"lit"')
        assert tr.subject == IRI("http://e/s")
        assert tr.object.lexical == "lit"

    def test_blank_node_shorthand(self):
        tr = triple("_:b", "http://e/p", "http://e/o")
        assert str(tr.subject) == "_:b"

    def test_str_is_ntriples_line(self):
        assert str(t("s", "p", "o")) == "<http://e/s> <http://e/p> <http://e/o> ."


class TestRDFGraph:
    def test_add_and_len(self):
        g = RDFGraph()
        assert g.add(t("a", "p", "b"))
        assert not g.add(t("a", "p", "b"))  # duplicate
        assert len(g) == 1

    def test_contains_and_iter(self):
        g = RDFGraph([t("a", "p", "b"), t("b", "p", "c")])
        assert t("a", "p", "b") in g
        assert len(list(g)) == 2

    def test_discard(self):
        g = RDFGraph([t("a", "p", "b")])
        assert g.discard(t("a", "p", "b"))
        assert not g.discard(t("a", "p", "b"))
        assert len(g) == 0
        assert list(g.match(subject=IRI("http://e/a"))) == []

    def test_vertices_are_subjects_and_objects(self):
        g = RDFGraph([t("a", "p", "b")])
        names = {v.value for v in g.vertices}
        assert names == {"http://e/a", "http://e/b"}

    def test_predicates(self):
        g = RDFGraph([t("a", "p", "b"), t("a", "q", "b")])
        assert {p.value for p in g.predicates} == {"http://e/p", "http://e/q"}

    def test_match_fully_bound(self):
        g = RDFGraph([t("a", "p", "b")])
        assert list(g.match(IRI("http://e/a"), IRI("http://e/p"), IRI("http://e/b")))
        assert not list(
            g.match(IRI("http://e/a"), IRI("http://e/p"), IRI("http://e/x"))
        )

    def test_match_by_each_single_position(self):
        g = RDFGraph([t("a", "p", "b"), t("a", "q", "c"), t("x", "p", "b")])
        assert len(list(g.match(subject=IRI("http://e/a")))) == 2
        assert len(list(g.match(predicate=IRI("http://e/p")))) == 2
        assert len(list(g.match(object=IRI("http://e/b")))) == 2

    def test_match_pairs(self):
        g = RDFGraph([t("a", "p", "b"), t("a", "p", "c"), t("a", "q", "b")])
        assert len(list(g.match(IRI("http://e/a"), IRI("http://e/p"), None))) == 2
        assert len(list(g.match(None, IRI("http://e/p"), IRI("http://e/b")))) == 1
        assert len(list(g.match(IRI("http://e/a"), None, IRI("http://e/b")))) == 2

    def test_match_all(self):
        g = RDFGraph([t("a", "p", "b"), t("b", "p", "c")])
        assert len(list(g.match())) == 2

    def test_count(self):
        g = RDFGraph([t("a", "p", "b"), t("b", "p", "c")])
        assert g.count(predicate=IRI("http://e/p")) == 2

    def test_out_in_edges(self):
        g = RDFGraph([t("a", "p", "b"), t("b", "p", "c")])
        assert len(g.out_edges(IRI("http://e/b"))) == 1
        assert len(g.in_edges(IRI("http://e/b"))) == 1
        assert len(g.edges(IRI("http://e/b"))) == 2

    def test_edges_deduplicates_self_loop(self):
        g = RDFGraph([t("a", "p", "a")])
        assert len(g.edges(IRI("http://e/a"))) == 1

    def test_neighbors(self):
        g = RDFGraph([t("a", "p", "b"), t("c", "p", "a")])
        assert {v.value for v in g.neighbors(IRI("http://e/a"))} == {
            "http://e/b",
            "http://e/c",
        }

    def test_copy_is_independent(self):
        g = RDFGraph([t("a", "p", "b")])
        h = g.copy()
        h.add(t("x", "p", "y"))
        assert len(g) == 1 and len(h) == 2
