"""Tests for the workload generators (LUBM-like, UniProt-like, random, WatDiv)."""

import random

import pytest

from repro.core import JoinGraph, QueryShape
from repro.engine import evaluate_reference
from repro.workloads import (
    WatDivGenerator,
    chain_query,
    cycle_query,
    dense_query,
    generate_lubm,
    generate_uniprot,
    generate_workload,
    instantiate,
    lubm_queries,
    star_query,
    tree_query,
    uniprot_queries,
    watdiv_workload,
)
from repro.workloads.lubm import QUERY_SHAPES as LUBM_SHAPES
from repro.workloads.uniprot import QUERY_SHAPES as UNIPROT_SHAPES


@pytest.fixture(scope="module")
def lubm_dataset():
    return generate_lubm()


@pytest.fixture(scope="module")
def uniprot_dataset():
    return generate_uniprot()


class TestLUBM:
    def test_deterministic(self):
        a = generate_lubm(seed=1)
        b = generate_lubm(seed=1)
        assert a.triple_count == b.triple_count
        assert set(a.graph) == set(b.graph)

    def test_reasonable_size(self, lubm_dataset):
        assert lubm_dataset.triple_count > 5000

    def test_all_queries_nonempty(self, lubm_dataset):
        for name, query in lubm_queries().items():
            rows = len(evaluate_reference(query, lubm_dataset.graph))
            assert rows > 0, f"{name} returned no rows"

    def test_table3_shapes(self):
        """Query shapes must match the paper's Table III."""
        for name, query in lubm_queries().items():
            assert JoinGraph(query).shape().value == LUBM_SHAPES[name], name

    def test_unknown_query_rejected(self):
        from repro.workloads.lubm import lubm_query

        with pytest.raises(KeyError):
            lubm_query("L99")


class TestUniProt:
    def test_all_queries_nonempty(self, uniprot_dataset):
        for name, query in uniprot_queries().items():
            rows = len(evaluate_reference(query, uniprot_dataset.graph))
            assert rows > 0, f"{name} returned no rows"

    def test_table3_shapes(self):
        for name, query in uniprot_queries().items():
            assert JoinGraph(query).shape().value == UNIPROT_SHAPES[name], name

    def test_minimum_protein_guard(self):
        from repro.workloads.uniprot import UniProtGenerator

        with pytest.raises(ValueError):
            UniProtGenerator(proteins=5)


class TestRandomGenerator:
    def test_shapes_as_requested(self):
        assert JoinGraph(chain_query(10)).shape() is QueryShape.CHAIN
        assert JoinGraph(cycle_query(10)).shape() is QueryShape.CYCLE
        assert JoinGraph(star_query(10)).shape() is QueryShape.STAR
        assert JoinGraph(dense_query(10, random.Random(0))).shape() is QueryShape.DENSE

    def test_sizes_exact(self):
        for n in (4, 9, 17):
            assert len(chain_query(n)) == n
            assert len(cycle_query(n)) == n
            assert len(star_query(n)) == n
            assert len(tree_query(n, random.Random(n))) == n
            assert len(dense_query(n, random.Random(n))) == n

    def test_minimum_sizes_enforced(self):
        with pytest.raises(ValueError):
            chain_query(1)
        with pytest.raises(ValueError):
            cycle_query(2)
        with pytest.raises(ValueError):
            dense_query(3)

    def test_workload_reproducible(self):
        a = list(generate_workload(sizes=range(2, 6), statistics_draws=2, seed=1))
        b = list(generate_workload(sizes=range(2, 6), statistics_draws=2, seed=1))
        assert len(a) == len(b)
        for wa, wb in zip(a, b):
            assert wa.query.name == wb.query.name
            assert [s.cardinality for s in wa.statistics.per_pattern] == [
                s.cardinality for s in wb.statistics.per_pattern
            ]

    def test_workload_statistics_in_range(self):
        for w in generate_workload(sizes=[5], statistics_draws=1, seed=3):
            for stats in w.statistics.per_pattern:
                assert 1 <= stats.cardinality <= 1000
                for b in stats.bindings.values():
                    assert 1 <= b <= stats.cardinality

    def test_workload_queries_connected(self):
        for w in generate_workload(sizes=[2, 7, 13], statistics_draws=1):
            jg = JoinGraph(w.query)
            assert jg.is_connected(jg.full), w.query.name


class TestWatDiv:
    def test_template_count(self):
        templates = WatDivGenerator(seed=5).templates(40)
        assert len(templates) == 40

    def test_templates_are_connected(self):
        for template in WatDivGenerator(seed=5).templates(40):
            jg = JoinGraph(template.query)
            assert jg.is_connected(jg.full), template.query.name

    def test_instances_keep_structure(self):
        rng = random.Random(0)
        template = WatDivGenerator(seed=5).templates(10)[3]
        q1, s1 = instantiate(template, 0, rng)
        q2, s2 = instantiate(template, 1, rng)
        assert len(q1) == len(q2) == len(template.query)
        jg = JoinGraph(q1)
        assert jg.is_connected(jg.full)

    def test_workload_iterator(self):
        items = list(watdiv_workload(templates=5, instances_per_template=3))
        assert len(items) == 15
        for template, query, statistics in items:
            assert len(statistics.per_pattern) == len(query)
